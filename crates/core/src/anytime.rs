//! Anytime configuration search: an interruptible, resumable driver
//! around the paper's greedy search, plus optional exhaustive
//! refinement on small DAGs.
//!
//! The offline strategies in [`crate::search`] run to completion; the
//! daemon's ADVISE cycle cannot afford that under heavy traffic. This
//! driver executes the *same* greedy algorithm (identical add loop,
//! OR-group stall handling, eviction pass and drop-unused guarantee —
//! with an unbounded budget and no warm start it returns the exact
//! `GreedyHeuristic` configuration) but checks a wall-clock /
//! evaluation budget between what-if evaluations and can stop at any
//! point, returning the best configuration found so far together with
//! convergence telemetry.
//!
//! The frontier is plain data ([`AnytimeState`]): callers may stop a
//! search and [`anytime_step`] it again later — each slice resumes
//! where the previous one stopped, and a run chopped into arbitrarily
//! small slices converges to the same configuration as an
//! uninterrupted run (pinned by the tests below). A slice always makes
//! progress: the budget is only consulted after the slice's first
//! evaluation.
//!
//! On DAGs of at most [`AnytimeOptions::refine_max_nodes`] nodes, a
//! final refinement phase enumerates *all* budget-feasible subsets
//! (what-if memoization makes the 2^n sweep cheap) and keeps the
//! cheapest — this makes the anytime result provably optimal on small
//! instances, which is what the oracle's `advise-quality` invariant
//! leans on.

use std::time::{Duration, Instant};

use crate::generalize::Dag;
use crate::search::{outcome, try_or_group_add, GreedyKnobs, SearchOutcome};
use crate::whatif::{normalize, EngineConfig, WhatIfEngine};
use crate::workload::Workload;
use xia_optimizer::CostModel;
use xia_storage::Collection;

/// Stop conditions for one search slice. `None` fields are unbounded.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnytimeBudget {
    /// Wall-clock limit for the slice.
    pub wall: Option<Duration>,
    /// Maximum what-if evaluations for the slice.
    pub max_evals: Option<u64>,
}

impl AnytimeBudget {
    pub fn unbounded() -> AnytimeBudget {
        AnytimeBudget::default()
    }

    pub fn wall_millis(ms: u64) -> AnytimeBudget {
        AnytimeBudget {
            wall: Some(Duration::from_millis(ms)),
            max_evals: None,
        }
    }

    pub fn evals(n: u64) -> AnytimeBudget {
        AnytimeBudget {
            wall: None,
            max_evals: Some(n),
        }
    }
}

/// Options for an anytime search.
#[derive(Debug, Clone, Default)]
pub struct AnytimeOptions {
    /// Per-slice stop condition.
    pub budget: AnytimeBudget,
    /// Run exhaustive subset refinement when the DAG has at most this
    /// many nodes. `0` disables refinement, which keeps the completed
    /// search bit-identical to `SearchStrategy::GreedyHeuristic` (the
    /// daemon relies on this so online ADVISE matches offline
    /// RECOMMEND).
    pub refine_max_nodes: usize,
    /// Start from this configuration (DAG node indices) instead of the
    /// empty one. Over-budget warm starts are trimmed largest-first.
    pub warm_start: Vec<usize>,
}

/// One point on the best-so-far cost curve.
#[derive(Debug, Clone, Copy)]
pub struct ConvergencePoint {
    /// Cumulative what-if evaluations when this cost was reached.
    pub evals: u64,
    /// Cumulative search wall time (seconds across all slices).
    pub wall_secs: f64,
    pub cost: f64,
}

/// One greedy acceptance, in order: the node(s) added, the marginal
/// workload-cost benefit the add was credited with, and the bytes it
/// costs. Because the greedy is submodular-style, the sequence is a
/// *frontier*: each entry's benefit is conditional on every earlier
/// entry, so consumers (the cross-tenant allocator in
/// [`crate::tenancy`]) must take prefixes, never skip entries.
/// Warm-start nodes are carried over wholesale and do not appear here.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// DAG node indices added by this step (one for a plain greedy
    /// add, several for an OR-group add).
    pub nodes: Vec<usize>,
    /// Workload-cost reduction credited to this step.
    pub marginal: f64,
    /// Estimated index size of this step's additions.
    pub size_bytes: u64,
}

/// Telemetry accumulated across all slices of a search.
#[derive(Debug, Clone, Default)]
pub struct AnytimeTelemetry {
    /// Configuration changes applied (greedy adds, evictions, refine
    /// improvements).
    pub iterations: u64,
    /// What-if evaluations driven by the search.
    pub evals: u64,
    /// Best-so-far workload cost after each improvement.
    pub curve: Vec<ConvergencePoint>,
    /// The last slice stopped on budget before the search completed.
    pub exhausted: bool,
    /// Exhaustive refinement ran to completion.
    pub refined: bool,
    /// Slices executed so far.
    pub resumes: u64,
    /// Warm-start nodes accepted after trimming.
    pub warm_start: usize,
    /// Greedy acceptance sequence (marginal benefit per add, in
    /// order). Prefix-consistent: see [`FrontierPoint`].
    pub frontier: Vec<FrontierPoint>,
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Init,
    /// Greedy add loop; the candidate scan of one add step is itself
    /// resumable.
    Greedy,
    Evict,
    DropUnused,
    Refine,
    Done,
}

/// The resumable frontier of an anytime search. Plain data — the
/// what-if engine is rebuilt per slice (its caches warm up again, but
/// decisions depend only on this state, so chopped and uninterrupted
/// runs converge identically).
#[derive(Debug, Clone)]
pub struct AnytimeState {
    phase: Phase,
    chosen: Vec<usize>,
    covered: u128,
    // Greedy add-step scan frontier.
    scan: Option<GreedyScan>,
    // Eviction pass frontier.
    evict_current: Option<f64>,
    evict_pos: usize,
    // Refinement frontier.
    refine_next: u64,
    best: Vec<usize>,
    best_cost: Option<f64>,
    best_size: u64,
    trace: Vec<String>,
    wall_secs: f64,
    telemetry: AnytimeTelemetry,
}

#[derive(Debug, Clone)]
struct GreedyScan {
    next: usize,
    current: f64,
    used: u64,
    best: Option<(usize, f64, f64)>, // (node, marginal, ratio)
}

impl Default for AnytimeState {
    fn default() -> Self {
        AnytimeState::new()
    }
}

impl AnytimeState {
    pub fn new() -> AnytimeState {
        AnytimeState {
            phase: Phase::Init,
            chosen: Vec::new(),
            covered: 0,
            scan: None,
            evict_current: None,
            evict_pos: 0,
            refine_next: 0,
            best: Vec::new(),
            best_cost: None,
            best_size: 0,
            trace: Vec::new(),
            wall_secs: 0.0,
            telemetry: AnytimeTelemetry::default(),
        }
    }

    /// The search has run to completion; further slices are no-ops.
    pub fn done(&self) -> bool {
        self.phase == Phase::Done
    }

    pub fn telemetry(&self) -> &AnytimeTelemetry {
        &self.telemetry
    }

    /// Best configuration found so far (normalized node indices).
    fn best_so_far(&self) -> Vec<usize> {
        if self.best_cost.is_some() {
            self.best.clone()
        } else {
            normalize(&self.chosen)
        }
    }
}

/// Result of one slice: the best-so-far packaged as a [`SearchOutcome`]
/// plus cumulative telemetry. `outcome.stats` covers the last slice
/// only (each slice rebuilds the engine).
#[derive(Debug, Clone)]
pub struct AnytimeOutcome {
    pub outcome: SearchOutcome,
    pub telemetry: AnytimeTelemetry,
}

/// Run a fresh anytime search for one slice (a single call with an
/// unbounded budget runs to completion).
pub fn anytime_search(
    collection: &Collection,
    model: &CostModel,
    workload: &Workload,
    dag: &Dag,
    budget_bytes: u64,
    opts: &AnytimeOptions,
) -> AnytimeOutcome {
    let mut state = AnytimeState::new();
    anytime_step(
        &mut state,
        collection,
        model,
        workload,
        dag,
        budget_bytes,
        opts,
    )
}

/// Run (or resume) one slice of an anytime search. The slice stops
/// when `opts.budget` is exhausted or the search completes; consult
/// [`AnytimeState::done`] to tell which.
#[allow(clippy::too_many_arguments)]
pub fn anytime_step(
    state: &mut AnytimeState,
    collection: &Collection,
    model: &CostModel,
    workload: &Workload,
    dag: &Dag,
    budget_bytes: u64,
    opts: &AnytimeOptions,
) -> AnytimeOutcome {
    let start = Instant::now();
    let mut ev =
        WhatIfEngine::from_workload(collection, model, workload, dag, EngineConfig::default());
    state.telemetry.resumes += 1;
    let mut slice_evals: u64 = 0;
    let knobs = GreedyKnobs::default();
    let n = ev.dag.nodes.len();

    // One driver evaluation, counted against slice and lifetime budgets.
    macro_rules! eval {
        ($cfg:expr) => {{
            slice_evals += 1;
            state.telemetry.evals += 1;
            ev.cost($cfg)
        }};
    }
    // Budget check between evaluations. A slice always performs at
    // least one evaluation so chopped runs make progress.
    macro_rules! over {
        () => {
            slice_evals > 0
                && (opts.budget.wall.is_some_and(|w| start.elapsed() >= w)
                    || opts.budget.max_evals.is_some_and(|m| slice_evals >= m))
        };
    }
    macro_rules! point {
        ($cost:expr) => {
            state.telemetry.curve.push(ConvergencePoint {
                evals: state.telemetry.evals,
                wall_secs: state.wall_secs + start.elapsed().as_secs_f64(),
                cost: $cost,
            })
        };
    }

    let mut suspended = false;
    'drive: loop {
        match state.phase {
            Phase::Init => {
                let base = eval!(&[]);
                state
                    .trace
                    .push(format!("anytime: no-index workload cost {base:.1}"));
                // Warm start: previous cycle's configuration, trimmed
                // largest-first until it fits the disk budget.
                let mut warm: Vec<usize> = normalize(
                    &opts
                        .warm_start
                        .iter()
                        .copied()
                        .filter(|&i| i < n)
                        .collect::<Vec<_>>(),
                );
                while !warm.is_empty() && ev.size(&warm) > budget_bytes {
                    let drop_pos = (0..warm.len())
                        .max_by_key(|&p| (ev.dag.nodes[warm[p]].candidate.size_bytes, p))
                        .unwrap();
                    warm.remove(drop_pos);
                }
                if !warm.is_empty() {
                    let cost = eval!(&warm);
                    state.trace.push(format!(
                        "warm start: {} indexes carried over, cost {cost:.1}",
                        warm.len()
                    ));
                    point!(cost);
                } else {
                    point!(base);
                }
                state.telemetry.warm_start = warm.len();
                for &i in &warm {
                    state.covered |= ev.coverage[i];
                }
                state.chosen = warm;
                state.phase = Phase::Greedy;
            }
            Phase::Greedy => {
                // Start a fresh add step unless one is suspended mid-scan.
                if state.scan.is_none() {
                    if over!() {
                        suspended = true;
                        break 'drive;
                    }
                    let used = ev.size(&state.chosen);
                    let current = eval!(&state.chosen);
                    state.scan = Some(GreedyScan {
                        next: 0,
                        current,
                        used,
                        best: None,
                    });
                }
                let mut scan = state.scan.take().unwrap();
                while scan.next < n {
                    let i = scan.next;
                    if state.chosen.contains(&i)
                        || scan.used + ev.dag.nodes[i].candidate.size_bytes > budget_bytes
                        || (knobs.coverage_bitmap && ev.coverage[i] & !state.covered == 0)
                    {
                        scan.next += 1;
                        continue;
                    }
                    if over!() {
                        state.scan = Some(scan);
                        suspended = true;
                        break 'drive;
                    }
                    let mut with = state.chosen.clone();
                    with.push(i);
                    let marginal = scan.current - eval!(&with);
                    scan.next += 1;
                    if marginal <= 0.0 {
                        continue;
                    }
                    let ratio = marginal / ev.dag.nodes[i].candidate.size_bytes.max(1) as f64;
                    if scan.best.is_none_or(|(_, _, r)| ratio > r) {
                        scan.best = Some((i, marginal, ratio));
                    }
                }
                match scan.best {
                    Some((i, marginal, ratio)) => {
                        state.covered |= ev.coverage[i];
                        state.trace.push(format!(
                            "add {} (marginal benefit {marginal:.1}, ratio {ratio:.6})",
                            ev.dag.nodes[i].candidate.pattern
                        ));
                        state.chosen.push(i);
                        state.telemetry.iterations += 1;
                        state.telemetry.frontier.push(FrontierPoint {
                            nodes: vec![i],
                            marginal,
                            size_bytes: ev.dag.nodes[i].candidate.size_bytes,
                        });
                        point!(scan.current - marginal);
                    }
                    None => {
                        // Single additions stalled: try one whole OR group,
                        // exactly as the offline greedy does.
                        slice_evals += 1;
                        state.telemetry.evals += 1;
                        if let Some(added) = try_or_group_add(
                            &mut ev,
                            &state.chosen,
                            state.covered,
                            budget_bytes,
                            knobs,
                        ) {
                            for &i in &added {
                                state.covered |= ev.coverage[i];
                                state.trace.push(format!(
                                    "add {} (OR-group member)",
                                    ev.dag.nodes[i].candidate.pattern
                                ));
                            }
                            let group_bytes: u64 = added
                                .iter()
                                .map(|&i| ev.dag.nodes[i].candidate.size_bytes)
                                .sum();
                            state.chosen.extend(added.clone());
                            // Uncounted cache-warm re-evaluation: the
                            // group's config was just costed inside
                            // `try_or_group_add`, so this read does not
                            // perturb the eval budget (keeping chopped
                            // and uninterrupted runs bit-identical).
                            let after = ev.cost(&state.chosen);
                            state.telemetry.frontier.push(FrontierPoint {
                                nodes: added,
                                marginal: (scan.current - after).max(0.0),
                                size_bytes: group_bytes,
                            });
                            state.telemetry.iterations += 1;
                        } else {
                            state.phase = Phase::Evict;
                        }
                    }
                }
            }
            Phase::Evict => {
                if state.evict_current.is_none() {
                    if over!() {
                        suspended = true;
                        break 'drive;
                    }
                    state.evict_current = Some(eval!(&state.chosen));
                    state.evict_pos = 0;
                }
                let current = state.evict_current.unwrap();
                let mut evicted = false;
                while state.evict_pos < state.chosen.len() {
                    if over!() {
                        suspended = true;
                        break 'drive;
                    }
                    let mut without = state.chosen.clone();
                    let node = without.remove(state.evict_pos);
                    if eval!(&without) <= current + 1e-9 {
                        state.trace.push(format!(
                            "evict redundant {} (no benefit loss, reclaim {} KiB)",
                            ev.dag.nodes[node].candidate.pattern,
                            ev.dag.nodes[node].candidate.size_bytes / 1024
                        ));
                        state.chosen = without;
                        state.evict_current = None;
                        state.telemetry.iterations += 1;
                        evicted = true;
                        break;
                    }
                    state.evict_pos += 1;
                }
                if !evicted && state.evict_current.is_some() {
                    state.phase = Phase::DropUnused;
                }
            }
            Phase::DropUnused => {
                if over!() {
                    suspended = true;
                    break 'drive;
                }
                slice_evals += 1;
                state.telemetry.evals += 1;
                let (_, used_per_query) = ev.detail(&state.chosen);
                let used_set: std::collections::HashSet<usize> =
                    used_per_query.iter().flatten().copied().collect();
                let trace = &mut state.trace;
                state.chosen.retain(|i| {
                    let keep = used_set.contains(i);
                    if !keep {
                        trace.push(format!(
                            "drop unused {} (not used by any plan)",
                            ev.dag.nodes[*i].candidate.pattern
                        ));
                    }
                    keep
                });
                let refine = opts.refine_max_nodes > 0 && n <= opts.refine_max_nodes && n < 26;
                state.phase = if refine { Phase::Refine } else { Phase::Done };
            }
            Phase::Refine => {
                if state.best_cost.is_none() {
                    if over!() {
                        suspended = true;
                        break 'drive;
                    }
                    state.best = normalize(&state.chosen);
                    state.best_cost = Some(eval!(&state.best));
                    state.best_size = ev.size(&state.best);
                    state.refine_next = 0;
                    state.trace.push(format!(
                        "refine: exhaustive sweep over {} subsets",
                        1u64 << n
                    ));
                }
                while state.refine_next < (1u64 << n) {
                    if over!() {
                        suspended = true;
                        break 'drive;
                    }
                    let mask = state.refine_next;
                    state.refine_next += 1;
                    let cfg: Vec<usize> = (0..n).filter(|&b| mask >> b & 1 == 1).collect();
                    let size = ev.size(&cfg);
                    if size > budget_bytes {
                        continue;
                    }
                    let cost = eval!(&cfg);
                    let best_cost = state.best_cost.unwrap();
                    let better = match cost.total_cmp(&best_cost) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => size < state.best_size,
                        std::cmp::Ordering::Greater => false,
                    };
                    if better {
                        if cost < best_cost {
                            point!(cost);
                            state.telemetry.iterations += 1;
                        }
                        state.best = cfg;
                        state.best_cost = Some(cost);
                        state.best_size = size;
                    }
                }
                if state.refine_next >= (1u64 << n) {
                    state.chosen = state.best.clone();
                    state.telemetry.refined = true;
                    state.phase = Phase::Done;
                }
            }
            Phase::Done => break 'drive,
        }
    }

    state.telemetry.exhausted = suspended;
    state.wall_secs += start.elapsed().as_secs_f64();
    let best = state.best_so_far();
    let mut trace = state.trace.clone();
    if suspended {
        trace.push(format!(
            "budget exhausted in {:?} phase after {} evals — returning best-so-far",
            state.phase, state.telemetry.evals
        ));
    }
    AnytimeOutcome {
        outcome: outcome(&mut ev, best, trace),
        telemetry: state.telemetry.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_basic_candidates;
    use crate::generalize::{generalize, GeneralizationConfig};
    use crate::search::{search, SearchStrategy};
    use xia_xml::DocumentBuilder;

    fn collection(n: usize) -> Collection {
        let regions = ["africa", "asia", "europe", "namerica"];
        let mut c = Collection::new("shop");
        for i in 0..n {
            let mut b = DocumentBuilder::new();
            b.open("site");
            b.open(regions[i % regions.len()]);
            b.open("item");
            b.leaf("price", &format!("{}", i % 40));
            b.leaf("quantity", &format!("{}", i % 7));
            b.close();
            b.close();
            b.close();
            c.insert(b.finish().unwrap());
        }
        c
    }

    fn setup(n: usize, queries: &[&str]) -> (Collection, Workload, Dag) {
        let c = collection(n);
        let w = Workload::from_queries(queries, "shop").unwrap();
        let basics = generate_basic_candidates(&c, &w);
        let dag = generalize(&c, &basics, &GeneralizationConfig::default());
        (c, w, dag)
    }

    const QUERIES: &[&str] = &[
        "/site/africa/item[price = 3]/quantity",
        "/site/asia/item[price = 17]/quantity",
        "/site/europe/item[quantity = 2]/price",
    ];

    #[test]
    fn unbounded_run_matches_offline_greedy() {
        let (c, w, dag) = setup(400, QUERIES);
        let model = CostModel::default();
        let budget = 1 << 20;
        let greedy = search(
            &c,
            &model,
            &w,
            &dag,
            budget,
            SearchStrategy::GreedyHeuristic,
        );
        let any = anytime_search(&c, &model, &w, &dag, budget, &AnytimeOptions::default());
        assert_eq!(any.outcome.chosen, greedy.chosen);
        assert_eq!(any.outcome.workload_cost, greedy.workload_cost);
        assert!(!any.telemetry.exhausted);
        assert!(!any.telemetry.curve.is_empty());
        assert!(any.telemetry.iterations > 0);
    }

    #[test]
    fn chopped_resume_converges_to_uninterrupted_result() {
        let (c, w, dag) = setup(300, QUERIES);
        let model = CostModel::default();
        let budget = 1 << 20;
        let full = anytime_search(&c, &model, &w, &dag, budget, &AnytimeOptions::default());

        let opts = AnytimeOptions {
            budget: AnytimeBudget::evals(3),
            ..Default::default()
        };
        let mut state = AnytimeState::new();
        let mut last = None;
        for _ in 0..10_000 {
            let out = anytime_step(&mut state, &c, &model, &w, &dag, budget, &opts);
            let done = state.done();
            last = Some(out);
            if done {
                break;
            }
        }
        let last = last.unwrap();
        assert!(state.done(), "chopped run did not finish");
        assert!(last.telemetry.resumes > 1);
        assert_eq!(last.outcome.chosen, full.outcome.chosen);
        assert_eq!(last.outcome.workload_cost, full.outcome.workload_cost);
    }

    #[test]
    fn exhausted_slice_returns_valid_best_so_far() {
        let (c, w, dag) = setup(300, QUERIES);
        let model = CostModel::default();
        let budget = 1 << 20;
        let opts = AnytimeOptions {
            budget: AnytimeBudget::evals(1),
            ..Default::default()
        };
        let out = anytime_search(&c, &model, &w, &dag, budget, &opts);
        assert!(out.telemetry.exhausted);
        assert!(out.outcome.size_bytes <= budget);
        assert!(out.outcome.workload_cost <= out.outcome.base_cost + 1e-9);
    }

    #[test]
    fn refinement_is_exhaustively_optimal_on_small_dags() {
        let (c, w, dag) = setup(200, &["/site/africa/item[price = 3]/quantity"]);
        let n = dag.nodes.len();
        assert!(n <= 12, "fixture DAG unexpectedly large: {n}");
        let model = CostModel::default();
        let budget = 1 << 20;
        let opts = AnytimeOptions {
            refine_max_nodes: 12,
            ..Default::default()
        };
        let any = anytime_search(&c, &model, &w, &dag, budget, &opts);
        assert!(any.telemetry.refined);

        // Exhaustive reference over every budget-feasible subset.
        let mut ev = WhatIfEngine::from_workload(&c, &model, &w, &dag, EngineConfig::default());
        let mut best = f64::INFINITY;
        for mask in 0u64..(1 << n) {
            let cfg: Vec<usize> = (0..n).filter(|&b| mask >> b & 1 == 1).collect();
            if ev.size(&cfg) > budget {
                continue;
            }
            best = best.min(ev.cost(&cfg));
        }
        assert_eq!(any.outcome.workload_cost, best);
    }

    #[test]
    fn warm_start_is_trimmed_to_budget_and_preserved() {
        let (c, w, dag) = setup(300, QUERIES);
        let model = CostModel::default();
        let greedy = search(
            &c,
            &model,
            &w,
            &dag,
            1 << 20,
            SearchStrategy::GreedyHeuristic,
        );
        assert!(!greedy.chosen.is_empty());
        // Warm-start the full previous result under a tiny budget: it
        // must be trimmed, and the outcome must still fit.
        let opts = AnytimeOptions {
            warm_start: greedy.chosen.clone(),
            ..Default::default()
        };
        let tiny = anytime_search(&c, &model, &w, &dag, 64, &opts);
        assert!(tiny.outcome.size_bytes <= 64);
        // And under the real budget the warm-started search matches the
        // from-scratch result on an unchanged workload.
        let warm = anytime_search(&c, &model, &w, &dag, 1 << 20, &opts);
        assert_eq!(warm.outcome.chosen, greedy.chosen);
        assert_eq!(warm.telemetry.warm_start, greedy.chosen.len());
    }
}
