//! Basic candidate generation via the optimizer's Enumerate Indexes mode.

use crate::workload::Workload;
use xia_index::DataType;
use xia_optimizer::enumerate_indexes;
use xia_storage::Collection;
use xia_xpath::LinearPath;

/// A candidate index the search can choose, with its statistics-estimated
/// size and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub pattern: LinearPath,
    pub data_type: DataType,
    /// Estimated on-disk size (bytes), from the path dictionary.
    pub size_bytes: u64,
    /// Workload statement indices whose enumeration produced this
    /// candidate (empty for generalized candidates).
    pub source_queries: Vec<usize>,
    /// True for candidates enumerated by the optimizer; false for
    /// candidates added by generalization.
    pub basic: bool,
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} AS {} (~{} KiB{}{})",
            self.pattern,
            self.data_type,
            self.size_bytes / 1024,
            if self.basic { "" } else { ", generalized" },
            if self.source_queries.is_empty() {
                String::new()
            } else {
                format!(", q{:?}", self.source_queries)
            },
        )
    }
}

/// Run Enumerate Indexes over every workload query and merge the results
/// into a deduplicated basic candidate set sized from statistics.
pub fn generate_basic_candidates(collection: &Collection, workload: &Workload) -> Vec<Candidate> {
    let stats = collection.stats();
    let mut out: Vec<Candidate> = Vec::new();
    for (qi, stmt) in workload.statements.iter().enumerate() {
        let crate::workload::StatementKind::Query(q) = &stmt.kind else {
            continue;
        };
        for cand in enumerate_indexes(q) {
            match out
                .iter_mut()
                .find(|c| c.pattern == cand.pattern && c.data_type == cand.data_type)
            {
                Some(existing) => existing.source_queries.push(qi),
                None => out.push(Candidate {
                    size_bytes: stats.estimated_index_bytes(&cand.pattern, cand.data_type),
                    pattern: cand.pattern,
                    data_type: cand.data_type,
                    source_queries: vec![qi],
                    basic: true,
                }),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_xml::Document;

    fn collection() -> Collection {
        let mut c = Collection::new("shop");
        for i in 0..10 {
            let xml = format!(
                r#"<shop><item id="i{i}"><price>{}</price><name>n{}</name></item></shop>"#,
                i % 3,
                i % 2
            );
            c.insert(Document::parse(&xml).unwrap());
        }
        c
    }

    #[test]
    fn candidates_from_single_query() {
        let c = collection();
        let w = Workload::from_queries(&["/shop/item[price = 1]/name"], "shop").unwrap();
        let cands = generate_basic_candidates(&c, &w);
        let strs: Vec<String> = cands
            .iter()
            .map(|c| format!("{} {}", c.pattern, c.data_type))
            .collect();
        assert_eq!(
            strs,
            vec!["/shop/item/price DOUBLE", "/shop/item/name VARCHAR"]
        );
        assert!(cands.iter().all(|c| c.basic));
        assert!(cands[0].size_bytes > 0);
    }

    #[test]
    fn shared_patterns_merge_sources() {
        let c = collection();
        let w = Workload::from_queries(
            &["/shop/item[price = 1]", "/shop/item[price > 2]/name"],
            "shop",
        )
        .unwrap();
        let cands = generate_basic_candidates(&c, &w);
        let price = cands
            .iter()
            .find(|c| c.pattern.to_string() == "/shop/item/price")
            .unwrap();
        assert_eq!(price.source_queries, vec![0, 1]);
    }

    #[test]
    fn updates_do_not_produce_candidates() {
        let c = collection();
        let mut w = Workload::from_queries(&["/shop/item/name"], "shop").unwrap();
        w.add_insert(
            Document::parse("<shop><item><price>1</price></item></shop>").unwrap(),
            3.0,
        );
        let cands = generate_basic_candidates(&c, &w);
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn empty_workload_no_candidates() {
        let c = collection();
        let w = Workload::new();
        assert!(generate_basic_candidates(&c, &w).is_empty());
    }
}
