//! Workload compression: thousands of captured queries → a handful of
//! weighted template representatives (CoPhy-style, arXiv 1104.3214).
//!
//! The monitor already dedups *exact* normalized forms; under real
//! traffic the surviving entries still number in the hundreds because
//! literals vary (`//item[price > 3]` vs `//item[price > 4]`). Those
//! variants are the same query to the advisor: candidate patterns come
//! from atom *paths* and literal *types*, never literal values, and the
//! cost model prices predicates by path statistics alone. Compression
//! therefore clusters queries by **template** — collection + per-atom
//! (path, comparison operator, literal type, flags) — and keeps one
//! representative per cluster carrying the cluster's total weight.
//!
//! ## Error bound
//!
//! For any index configuration `X`, the optimizer always considers the
//! full document scan, so every query's optimized cost lies in
//! `[0, scan_cost]` where `scan_cost = pages·page_io + nodes·cpu_node`
//! is value-independent and identical for all queries on a collection.
//! Replacing a variant of weight `w` by its representative perturbs the
//! workload cost by at most `w · scan_cost`, hence for every `X`:
//!
//! ```text
//! |cost_full(X) − cost_compressed(X)| ≤ residual_weight · scan_cost = B
//! ```
//!
//! where `residual_weight` is the total weight of non-representative
//! variants (exact duplicates merge with zero residual — weight scaling
//! is exact). `B` is exposed as [`CompressedWorkload::error_bound`]; it
//! is `0` for duplicate-only workloads, which is the lossless property
//! pinned by `tests/prop_compress.rs`. Because same-template variants
//! generate identical candidate patterns, the generalization DAG built
//! from the compressed workload equals the DAG built from the full one —
//! the bound transfers directly to configuration search: searching the
//! compressed workload and evaluating the result on the full workload
//! costs at most `2·B` more than the full-workload optimum (the oracle's
//! `advise-quality` invariant).

use std::collections::HashMap;

use xia_optimizer::CostModel;
use xia_storage::Collection;
use xia_xpath::Literal;
use xia_xquery::NormalizedQuery;

use crate::workload::{Statement, StatementKind, Workload};

/// Template key of a normalized query: everything the candidate
/// generator and cost model can observe, with literal *values* erased
/// (literal *types* kept — they decide a candidate's `DataType`).
pub fn template_key(q: &NormalizedQuery) -> String {
    use std::fmt::Write;
    let mut key = q.collection.clone();
    for a in &q.atoms {
        let _ = write!(key, "\u{1}{}", a.path);
        if let Some((op, lit)) = &a.value {
            let ty = match lit {
                Literal::Str(_) => "str",
                Literal::Num(_) => "num",
            };
            let _ = write!(key, "\u{2}{op}\u{2}{ty}");
        }
        let _ = write!(
            key,
            "\u{2}{}{}{}",
            a.required as u8, a.is_extraction as u8, a.exact as u8
        );
        if let Some((g, n)) = a.or_group {
            let _ = write!(key, "\u{2}or{g}.{n}");
        }
    }
    key
}

/// Exact-form key: the template plus literal values — the same
/// equivalence the monitor's normalized-form dedup uses.
pub fn exact_key(q: &NormalizedQuery) -> String {
    use std::fmt::Write;
    let mut key = q.collection.clone();
    for a in &q.atoms {
        let _ = write!(key, "\u{1}{a}");
    }
    key
}

/// One cluster of same-template queries.
#[derive(Debug, Clone)]
pub struct TemplateCluster {
    /// The shared [`template_key`].
    pub template: String,
    /// Total frequency mass of the cluster (all variants).
    pub weight: f64,
    /// Number of distinct normalized forms merged into this cluster.
    pub variants: usize,
    /// Weight carried by non-representative variants — this cluster's
    /// contribution to the error bound.
    pub residual_weight: f64,
    /// Text of the representative (highest-weight) variant.
    pub representative: String,
}

/// A workload compressed to one weighted representative per template.
#[derive(Debug, Clone)]
pub struct CompressedWorkload {
    workload: Workload,
    pub clusters: Vec<TemplateCluster>,
    /// Query statements in the input workload (before any merging).
    pub raw_queries: usize,
    /// Distinct normalized forms after exact dedup (≥ `templates()`).
    pub distinct_queries: usize,
    /// Total query frequency mass (preserved exactly by compression).
    pub total_weight: f64,
    /// Σ per-cluster residual weight.
    pub residual_weight: f64,
}

impl CompressedWorkload {
    /// The compressed workload: one weighted statement per cluster (in
    /// first-occurrence order) plus all updates passed through.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    pub fn templates(&self) -> usize {
        self.clusters.len()
    }

    /// Upper bound on `|cost_full(X) − cost_compressed(X)|` for every
    /// configuration `X`, given the collection's scan cost (see
    /// [`scan_cost_upper_bound`]). Exactly `0.0` when the workload only
    /// contained exact duplicates.
    pub fn error_bound(&self, scan_cost: f64) -> f64 {
        self.residual_weight * scan_cost
    }

    pub fn summary(&self) -> String {
        format!(
            "{} raw -> {} distinct -> {} templates (residual weight {:.3})",
            self.raw_queries,
            self.distinct_queries,
            self.templates(),
            self.residual_weight
        )
    }
}

/// The value-independent full-scan cost of a collection — the width of
/// the interval every optimized query cost falls into, and therefore
/// the per-unit-weight term of the compression error bound.
pub fn scan_cost_upper_bound(collection: &Collection, model: &CostModel) -> f64 {
    let stats = collection.stats();
    stats.data_pages() as f64 * model.page_io + stats.total_nodes as f64 * model.cpu_node
}

/// Compress a workload: exact dedup first (lossless — weights add),
/// then template clustering (bounded error — see module docs). Updates
/// pass through untouched; their maintenance cost is exact either way.
pub fn compress(workload: &Workload) -> CompressedWorkload {
    // Pass 1: merge exact duplicates, keeping first-occurrence order.
    struct Variant {
        query: NormalizedQuery,
        weight: f64,
    }
    let mut variants: Vec<Variant> = Vec::new();
    let mut by_exact: HashMap<String, usize> = HashMap::new();
    let mut raw_queries = 0usize;
    let mut updates: Vec<Statement> = Vec::new();
    for stmt in &workload.statements {
        match &stmt.kind {
            StatementKind::Query(q) => {
                raw_queries += 1;
                match by_exact.entry(exact_key(q)) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        variants[*e.get()].weight += stmt.frequency;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(variants.len());
                        variants.push(Variant {
                            query: q.clone(),
                            weight: stmt.frequency,
                        });
                    }
                }
            }
            StatementKind::Insert { .. } | StatementKind::Delete { .. } => {
                updates.push(stmt.clone());
            }
        }
    }

    // Pass 2: cluster distinct variants by template, again in
    // first-occurrence order.
    struct Building {
        template: String,
        rep: usize, // index into `variants`
        weight: f64,
        count: usize,
    }
    let mut clusters: Vec<Building> = Vec::new();
    let mut by_template: HashMap<String, usize> = HashMap::new();
    for (i, v) in variants.iter().enumerate() {
        let key = template_key(&v.query);
        match by_template.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let c = &mut clusters[*e.get()];
                c.weight += v.weight;
                c.count += 1;
                // Representative = highest-weight variant; first
                // occurrence wins ties, so the choice is deterministic.
                if v.weight > variants[c.rep].weight {
                    c.rep = i;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(clusters.len());
                clusters.push(Building {
                    template: key,
                    rep: i,
                    weight: v.weight,
                    count: 1,
                });
            }
        }
    }

    let mut compressed = Workload::new();
    let mut out = Vec::with_capacity(clusters.len());
    let mut residual_total = 0.0;
    let mut total_weight = 0.0;
    for c in &clusters {
        let rep = &variants[c.rep];
        let residual = c.weight - rep.weight;
        residual_total += residual;
        total_weight += c.weight;
        compressed.add_compiled(rep.query.clone(), c.weight);
        out.push(TemplateCluster {
            template: c.template.clone(),
            weight: c.weight,
            variants: c.count,
            residual_weight: residual,
            representative: rep.query.text.clone(),
        });
    }
    compressed.statements.extend(updates);

    CompressedWorkload {
        workload: compressed,
        clusters: out,
        raw_queries,
        distinct_queries: variants.len(),
        total_weight,
        residual_weight: residual_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(texts: &[(&str, f64)]) -> Workload {
        let mut w = Workload::new();
        for (t, f) in texts {
            w.add_query(t, "c", *f).unwrap();
        }
        w
    }

    #[test]
    fn exact_duplicates_merge_with_zero_residual() {
        let w = workload(&[
            ("//item[price = 3]/name", 1.0),
            ("//item[price = 3]/name", 1.0),
            ("//person/age", 2.0),
            ("//item[price = 3]/name", 1.0),
        ]);
        let cw = compress(&w);
        assert_eq!(cw.raw_queries, 4);
        assert_eq!(cw.distinct_queries, 2);
        assert_eq!(cw.templates(), 2);
        assert_eq!(cw.residual_weight, 0.0);
        assert_eq!(cw.error_bound(1e9), 0.0);
        let freqs: Vec<f64> = cw.workload().queries().map(|(_, f)| f).collect();
        assert_eq!(freqs, vec![3.0, 2.0]);
        assert_eq!(cw.total_weight, 5.0);
    }

    #[test]
    fn literal_variants_cluster_by_template() {
        let w = workload(&[
            ("//item[price > 3]/name", 1.0),
            ("//item[price > 4]/name", 5.0),
            ("//item[price > 5]/name", 2.0),
        ]);
        let cw = compress(&w);
        assert_eq!(cw.distinct_queries, 3);
        assert_eq!(cw.templates(), 1);
        let c = &cw.clusters[0];
        // Representative is the heaviest variant; residual is the rest.
        assert_eq!(c.representative, "//item[price > 4]/name");
        assert_eq!(c.weight, 8.0);
        assert_eq!(c.residual_weight, 3.0);
        assert_eq!(cw.error_bound(10.0), 30.0);
        let (q, f) = cw.workload().queries().next().unwrap();
        assert_eq!(q.text, "//item[price > 4]/name");
        assert_eq!(f, 8.0);
    }

    #[test]
    fn literal_type_splits_templates() {
        // A numeric and a string literal on the same path need different
        // index data types, so they must not merge.
        let w = workload(&[("//item[a = 3]", 1.0), ("//item[a = \"x\"]", 1.0)]);
        let cw = compress(&w);
        assert_eq!(cw.templates(), 2);
    }

    #[test]
    fn operator_splits_templates() {
        let w = workload(&[("//item[a = 3]", 1.0), ("//item[a > 3]", 1.0)]);
        let cw = compress(&w);
        assert_eq!(cw.templates(), 2);
    }

    #[test]
    fn updates_pass_through() {
        let mut w = workload(&[("//item/name", 1.0)]);
        let doc = xia_xml::Document::parse("<a><item><name>x</name></item></a>").unwrap();
        w.add_insert(doc, 3.0);
        let cw = compress(&w);
        assert_eq!(cw.workload().updates().count(), 1);
        assert_eq!(cw.workload().statements.len(), 2);
    }

    #[test]
    fn scan_cost_matches_cost_model_terms() {
        let mut coll = Collection::new("c");
        for i in 0..50 {
            let xml = format!("<a><item><price>{i}</price></item></a>");
            coll.insert(xia_xml::Document::parse(&xml).unwrap());
        }
        let model = CostModel::default();
        let scan = scan_cost_upper_bound(&coll, &model);
        let stats = coll.stats();
        let expect =
            stats.data_pages() as f64 * model.page_io + stats.total_nodes as f64 * model.cpu_node;
        assert_eq!(scan, expect);
        assert!(scan > 0.0);
    }
}
