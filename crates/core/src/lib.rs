//! # xia-advisor
//!
//! The XML Index Advisor — the paper's primary contribution. Given an XML
//! database (a `xia-storage` collection), a query/update workload and a
//! disk space budget, it recommends the set of XML pattern indexes that
//! maximizes estimated workload benefit within the budget.
//!
//! The pipeline mirrors Figure 1 of the paper:
//!
//! 1. **Basic candidates** — for every workload query, the optimizer's
//!    *Enumerate Indexes* mode (virtual `//*` index + index matching)
//!    reports the query patterns an index could serve.
//! 2. **Generalization** — rules expand the basic candidates with more
//!    general patterns (`/regions/namerica/item/quantity` +
//!    `/regions/africa/item/quantity` → `/regions/*/item/quantity` →
//!    `/regions/*/item/*`), building a DAG whose roots are the most
//!    general candidates obtainable from the workload.
//! 3. **Configuration search** — a 0/1-knapsack-style search over
//!    candidate subsets, with benefit measured by the optimizer's
//!    *Evaluate Indexes* mode (virtual configurations, so index
//!    interaction is captured). Three strategies are provided: the
//!    relational-advisor greedy baseline [Valentin et al., ICDE 2000],
//!    the paper's greedy search with redundancy-detection heuristics and
//!    a workload-coverage bitmap, and the paper's top-down DAG search.
//! 4. **Analysis** — per-query costs under no-index / recommended /
//!    overtrained configurations, plus actual execution with the
//!    recommended indexes built.
//!
//! ```
//! use xia_advisor::{Advisor, SearchStrategy, Workload};
//! use xia_storage::Collection;
//! use xia_xml::Document;
//!
//! let mut coll = Collection::new("shop");
//! for i in 0..400 {
//!     let xml = format!("<shop><item><price>{}</price></item></shop>", i % 50);
//!     coll.insert(Document::parse(&xml).unwrap());
//! }
//! let workload = Workload::from_queries(&["//item[price = 3]"], "shop").unwrap();
//! let advisor = Advisor::default();
//! let rec = advisor.recommend(&coll, &workload, 1 << 20, SearchStrategy::GreedyHeuristic);
//! assert!(!rec.indexes.is_empty());
//! ```

pub mod advisor;
pub mod analysis;
pub mod anytime;
pub mod candidates;
pub mod compress;
pub mod generalize;
pub mod multi;
pub mod review;
pub mod search;
pub mod tenancy;
pub mod whatif;
pub mod workload;

pub use advisor::{Advisor, AdvisorConfig, CompressedRecommendation, Recommendation};
pub use analysis::{analyze, AnalysisReport, QueryCostTriple};
pub use anytime::{
    anytime_search, anytime_step, AnytimeBudget, AnytimeOptions, AnytimeOutcome, AnytimeState,
    AnytimeTelemetry, ConvergencePoint, FrontierPoint,
};
pub use candidates::{generate_basic_candidates, Candidate};
pub use compress::{
    compress, scan_cost_upper_bound, template_key, CompressedWorkload, TemplateCluster,
};
pub use generalize::{generalize, Dag, DagNode, GeneralizationConfig};
pub use multi::{CollectionAdvice, DatabaseRecommendation};
pub use review::{render_reviews, review_existing_indexes, IndexReview, IndexVerdict};
pub use search::{search_with, GreedyKnobs, SearchOutcome, SearchStrategy};
pub use tenancy::{
    allocate, merge_frontiers, pages_for, Allocation, FrontierItem, TenantAllocation,
    TenantFrontier, PAGE_BYTES,
};
pub use whatif::{reference_cost, reference_detail, EngineConfig, EvalStats, WhatIfEngine};
pub use workload::{Statement, StatementKind, Workload};
