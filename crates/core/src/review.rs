//! Reviewing an *existing* physical configuration.
//!
//! The demo's analysis view lets the user remove indexes and see the
//! effect (Figure 5). This module automates that: for each physical
//! index on a collection, estimate the workload cost with and without
//! it (simulated as virtual configurations, nothing is touched) and
//! classify it — indexes whose removal costs nothing are drop
//! candidates, reclaiming their space.

use crate::workload::Workload;
use xia_index::IndexDefinition;
use xia_optimizer::{evaluate_indexes, CostModel};
use xia_storage::Collection;
use xia_xquery::NormalizedQuery;

/// Verdict for one existing index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexVerdict {
    /// Some workload plan uses it and removing it raises cost.
    Keep,
    /// No best plan uses it; dropping reclaims its space for free.
    Drop,
}

/// Review result for one existing physical index.
#[derive(Debug, Clone)]
pub struct IndexReview {
    pub definition: IndexDefinition,
    pub verdict: IndexVerdict,
    /// Estimated workload cost increase if this index were dropped
    /// (0 for `Drop` verdicts).
    pub cost_if_dropped: f64,
    /// Bytes reclaimed by dropping it.
    pub reclaim_bytes: u64,
}

/// Review every physical index of `collection` against `workload`.
///
/// Returns one entry per index, `Drop` candidates first (largest
/// reclaim first), then `Keep` entries by ascending marginal value.
///
/// Verdicts are *leave-one-out*: each index is removed in isolation with
/// all others present. Two mutually redundant indexes therefore both get
/// `Drop` — drop one, re-run the review, and the survivor flips to
/// `Keep`. Drop one index at a time.
pub fn review_existing_indexes(
    collection: &Collection,
    model: &CostModel,
    workload: &Workload,
) -> Vec<IndexReview> {
    let queries: Vec<NormalizedQuery> = workload.queries().map(|(q, _)| q.clone()).collect();
    let freqs: Vec<f64> = workload.queries().map(|(_, f)| f).collect();
    let all_defs: Vec<IndexDefinition> = collection
        .indexes()
        .iter()
        .map(|ix| {
            let mut d = ix.definition().clone();
            d.is_virtual = true;
            d
        })
        .collect();

    let cost_of = |defs: &[IndexDefinition]| -> f64 {
        evaluate_indexes(collection, model, defs, &queries)
            .per_query
            .iter()
            .zip(&freqs)
            .map(|(q, f)| q.cost.total() * f)
            .sum()
    };
    let full_eval = evaluate_indexes(collection, model, &all_defs, &queries);
    let full_cost: f64 = full_eval
        .per_query
        .iter()
        .zip(&freqs)
        .map(|(q, f)| q.cost.total() * f)
        .sum();
    // Indexes used by some best plan under the full configuration: only
    // those need a leave-one-out evaluation. The rest are Drop by
    // definition (no plan would change without them).
    let used: std::collections::HashSet<_> = full_eval
        .per_query
        .iter()
        .flat_map(|q| q.used_indexes.iter().copied())
        .collect();

    let mut reviews: Vec<IndexReview> = collection
        .indexes()
        .iter()
        .enumerate()
        .map(|(i, ix)| {
            let cost_if_dropped = if used.contains(&ix.definition().id) {
                let mut without = all_defs.clone();
                without.remove(i);
                (cost_of(&without) - full_cost).max(0.0)
            } else {
                0.0
            };
            let verdict = if cost_if_dropped <= 1e-9 {
                IndexVerdict::Drop
            } else {
                IndexVerdict::Keep
            };
            IndexReview {
                definition: ix.definition().clone(),
                verdict,
                cost_if_dropped,
                reclaim_bytes: ix.byte_size() as u64,
            }
        })
        .collect();
    reviews.sort_by(|a, b| match (a.verdict, b.verdict) {
        (IndexVerdict::Drop, IndexVerdict::Keep) => std::cmp::Ordering::Less,
        (IndexVerdict::Keep, IndexVerdict::Drop) => std::cmp::Ordering::Greater,
        (IndexVerdict::Drop, IndexVerdict::Drop) => b.reclaim_bytes.cmp(&a.reclaim_bytes),
        (IndexVerdict::Keep, IndexVerdict::Keep) => a
            .cost_if_dropped
            .partial_cmp(&b.cost_if_dropped)
            .unwrap_or(std::cmp::Ordering::Equal),
    });
    reviews
}

/// Render a review table.
pub fn render_reviews(reviews: &[IndexReview]) -> String {
    let mut out = format!(
        "{:<44} {:>8} {:>14} {:>12}\n",
        "index", "verdict", "cost if gone", "reclaim KiB"
    );
    for r in reviews {
        out.push_str(&format!(
            "{:<44} {:>8} {:>14.1} {:>12}\n",
            format!("{}", r.definition),
            match r.verdict {
                IndexVerdict::Keep => "keep",
                IndexVerdict::Drop => "DROP",
            },
            r.cost_if_dropped,
            r.reclaim_bytes / 1024
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_index::{DataType, IndexId};
    use xia_xml::DocumentBuilder;
    use xia_xpath::LinearPath;

    fn collection(n: usize) -> Collection {
        let mut c = Collection::new("shop");
        for i in 0..n {
            let mut b = DocumentBuilder::new();
            b.open("shop");
            b.open("item");
            b.leaf("price", &format!("{}", i % 40));
            b.leaf("name", &format!("n{}", i % 5));
            b.close();
            b.close();
            c.insert(b.finish().unwrap());
        }
        c
    }

    #[test]
    fn unused_index_gets_drop_verdict() {
        let mut c = collection(300);
        c.create_index(IndexDefinition::new(
            IndexId(1),
            LinearPath::parse("//item/price").unwrap(),
            DataType::Double,
        ));
        // Nothing in the workload touches names.
        c.create_index(IndexDefinition::new(
            IndexId(2),
            LinearPath::parse("//item/name").unwrap(),
            DataType::Varchar,
        ));
        let w = Workload::from_queries(&["//item[price = 3]"], "shop").unwrap();
        let reviews = review_existing_indexes(&c, &CostModel::default(), &w);
        assert_eq!(reviews.len(), 2);
        let name_review = reviews
            .iter()
            .find(|r| r.definition.pattern.to_string() == "//item/name")
            .unwrap();
        assert_eq!(name_review.verdict, IndexVerdict::Drop);
        assert_eq!(name_review.cost_if_dropped, 0.0);
        let price_review = reviews
            .iter()
            .find(|r| r.definition.pattern.to_string() == "//item/price")
            .unwrap();
        assert_eq!(price_review.verdict, IndexVerdict::Keep);
        assert!(price_review.cost_if_dropped > 0.0);
        // Drop rows sort first.
        assert_eq!(reviews[0].verdict, IndexVerdict::Drop);
        let table = render_reviews(&reviews);
        assert!(table.contains("DROP"));
        assert!(table.contains("keep"));
    }

    #[test]
    fn redundant_general_index_is_droppable() {
        let mut c = collection(300);
        c.create_index(IndexDefinition::new(
            IndexId(1),
            LinearPath::parse("//item/price").unwrap(),
            DataType::Double,
        ));
        // Strictly more general duplicate of the same coverage.
        c.create_index(IndexDefinition::new(
            IndexId(2),
            LinearPath::parse("//price").unwrap(),
            DataType::Double,
        ));
        let w = Workload::from_queries(&["//item[price = 3]"], "shop").unwrap();
        let reviews = review_existing_indexes(&c, &CostModel::default(), &w);
        let general = reviews
            .iter()
            .find(|r| r.definition.pattern.to_string() == "//price")
            .unwrap();
        assert_eq!(
            general.verdict,
            IndexVerdict::Drop,
            "the specific index serves the query at least as cheaply"
        );
    }

    #[test]
    fn empty_catalog_reviews_to_nothing() {
        let c = collection(50);
        let w = Workload::from_queries(&["//item[price = 3]"], "shop").unwrap();
        assert!(review_existing_indexes(&c, &CostModel::default(), &w).is_empty());
    }
}
