//! Configuration search: choosing the recommended index set.
//!
//! The search space is subsets of DAG candidates under a disk budget — a
//! 0/1 knapsack whose item values interact (an index's benefit depends on
//! which others are present). Benefit is always measured through the
//! optimizer's Evaluate Indexes mode, so interaction is captured
//! (§2.3: "when estimating a configuration benefit, we take into account
//! that the benefit of an index can change depending on which other
//! indexes are available").
//!
//! Three strategies:
//!
//! * [`SearchStrategy::GreedyBaseline`] — the relational advisor's greedy
//!   knapsack [Valentin et al., ICDE 2000]: rank candidates by
//!   stand-alone benefit/size once, add until the budget is exhausted.
//!   Implemented as the comparison baseline the paper argues against.
//! * [`SearchStrategy::GreedyHeuristic`] — the paper's greedy search:
//!   marginal (interaction-aware) benefit per byte, a workload coverage
//!   bitmap that skips indexes covering no not-yet-covered XPath pattern
//!   (redundancy detection), an eviction pass that reclaims space from
//!   indexes whose removal costs nothing, and a final guarantee that
//!   every recommended index is used by at least one workload query.
//! * [`SearchStrategy::TopDown`] — the paper's root-to-leaf DAG search:
//!   start from the DAG roots (most general, maximum potential benefit),
//!   and repeatedly replace the largest over-budget index with its more
//!   specific (smaller) children until the configuration fits.

use crate::generalize::Dag;
use crate::whatif::{EngineConfig, EvalStats, WhatIfEngine};
use crate::workload::Workload;
use xia_optimizer::CostModel;
use xia_storage::Collection;

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    GreedyBaseline,
    GreedyHeuristic,
    TopDown,
    /// The greedy search with individual heuristics switched on/off —
    /// used by the ablation experiments to measure what each one buys.
    GreedyAblated(GreedyKnobs),
}

/// Individual switches for the paper's greedy-search heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyKnobs {
    /// Skip candidates that cover no not-yet-covered workload pattern.
    pub coverage_bitmap: bool,
    /// After the add loop, evict chosen indexes whose removal costs
    /// nothing and reclaim their space.
    pub eviction: bool,
    /// Drop recommended indexes no final plan uses.
    pub drop_unused: bool,
}

impl Default for GreedyKnobs {
    fn default() -> Self {
        GreedyKnobs {
            coverage_bitmap: true,
            eviction: true,
            drop_unused: true,
        }
    }
}

impl std::fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchStrategy::GreedyBaseline => f.write_str("greedy-baseline"),
            SearchStrategy::GreedyHeuristic => f.write_str("greedy-heuristic"),
            SearchStrategy::TopDown => f.write_str("top-down"),
            SearchStrategy::GreedyAblated(k) => write!(
                f,
                "greedy[bitmap={} evict={} drop={}]",
                k.coverage_bitmap, k.eviction, k.drop_unused
            ),
        }
    }
}

/// Result of a configuration search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Chosen candidates (indices into `dag.nodes`).
    pub chosen: Vec<usize>,
    /// Estimated workload cost with no indexes.
    pub base_cost: f64,
    /// Estimated workload cost under the chosen configuration.
    pub workload_cost: f64,
    /// Total estimated size of the configuration.
    pub size_bytes: u64,
    /// Step-by-step narration of the search (Figure 4's traversal view).
    pub trace: Vec<String>,
    /// Per-query estimated cost under the chosen configuration,
    /// in workload query order.
    pub per_query_cost: Vec<f64>,
    /// Indexes each query's best plan used (as DAG node indices).
    pub used_per_query: Vec<Vec<usize>>,
    /// What-if engine telemetry for the whole search run.
    pub stats: EvalStats,
}

impl SearchOutcome {
    pub fn benefit(&self) -> f64 {
        self.base_cost - self.workload_cost
    }
}

/// Run the chosen strategy with the default what-if engine settings.
pub fn search(
    collection: &Collection,
    model: &CostModel,
    workload: &Workload,
    dag: &Dag,
    budget_bytes: u64,
    strategy: SearchStrategy,
) -> SearchOutcome {
    search_with(
        collection,
        model,
        workload,
        dag,
        budget_bytes,
        strategy,
        EngineConfig::default(),
    )
}

/// Run the chosen strategy with explicit engine settings (benchmarks use
/// this to compare cached/uncached and serial/parallel evaluation).
pub fn search_with(
    collection: &Collection,
    model: &CostModel,
    workload: &Workload,
    dag: &Dag,
    budget_bytes: u64,
    strategy: SearchStrategy,
    engine: EngineConfig,
) -> SearchOutcome {
    let mut ev = WhatIfEngine::from_workload(collection, model, workload, dag, engine);
    match strategy {
        SearchStrategy::GreedyBaseline => greedy_baseline(&mut ev, budget_bytes),
        SearchStrategy::GreedyHeuristic => {
            greedy_heuristic(&mut ev, budget_bytes, GreedyKnobs::default())
        }
        SearchStrategy::GreedyAblated(knobs) => greedy_heuristic(&mut ev, budget_bytes, knobs),
        SearchStrategy::TopDown => top_down(&mut ev, budget_bytes),
    }
}

// ---------------------------------------------------------------------------
// Shared evaluation machinery.
// ---------------------------------------------------------------------------
//
// Configuration costing lives in [`crate::whatif`]: the engine memoizes
// per-query results by relevant-index signature, fans cache misses out
// across threads, and hoists update-maintenance node counts into a lazy
// table. Strategies only call `cost`/`detail`/`size` and read the
// coverage bitmap.

/// Package a finished search into a [`SearchOutcome`]. Shared with the
/// anytime driver in [`crate::anytime`].
pub(crate) fn outcome(
    ev: &mut WhatIfEngine<'_>,
    chosen: Vec<usize>,
    trace: Vec<String>,
) -> SearchOutcome {
    let chosen = crate::whatif::normalize(&chosen);
    let base_cost = ev.cost(&[]);
    let workload_cost = ev.cost(&chosen);
    let (per_query_cost, used_per_query) = ev.detail(&chosen);
    SearchOutcome {
        size_bytes: ev.size(&chosen),
        chosen,
        base_cost,
        workload_cost,
        trace,
        per_query_cost,
        used_per_query,
        stats: ev.stats().clone(),
    }
}

// ---------------------------------------------------------------------------
// Strategy 1: greedy knapsack baseline [Valentin et al. 2000].
// ---------------------------------------------------------------------------

fn greedy_baseline(ev: &mut WhatIfEngine<'_>, budget: u64) -> SearchOutcome {
    let base = ev.cost(&[]);
    let mut trace = vec![format!("baseline: no-index workload cost {base:.1}")];
    // Stand-alone benefit of each candidate, computed once.
    let mut ranked: Vec<(usize, f64)> = (0..ev.dag.nodes.len())
        .map(|i| {
            let alone = ev.cost(&[i]);
            let size = ev.dag.nodes[i].candidate.size_bytes.max(1) as f64;
            (i, (base - alone) / size)
        })
        .filter(|&(_, r)| r > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut chosen: Vec<usize> = Vec::new();
    let mut used: u64 = 0;
    for (i, ratio) in ranked {
        let size = ev.dag.nodes[i].candidate.size_bytes;
        if used + size > budget {
            continue;
        }
        used += size;
        trace.push(format!(
            "add {} (benefit/byte {:.6}, size {} KiB, used {} KiB)",
            ev.dag.nodes[i].candidate.pattern,
            ratio,
            size / 1024,
            used / 1024
        ));
        chosen.push(i);
    }
    outcome(ev, chosen, trace)
}

// ---------------------------------------------------------------------------
// Strategy 2: the paper's greedy search with heuristics.
// ---------------------------------------------------------------------------

fn greedy_heuristic(ev: &mut WhatIfEngine<'_>, budget: u64, knobs: GreedyKnobs) -> SearchOutcome {
    let base = ev.cost(&[]);
    let mut trace = vec![format!("greedy: no-index workload cost {base:.1}")];
    let mut chosen: Vec<usize> = Vec::new();
    let mut covered: u128 = 0;

    loop {
        let used: u64 = ev.size(&chosen);
        let current = ev.cost(&chosen);
        let mut best: Option<(usize, f64, f64)> = None; // (node, marginal, ratio)
        for i in 0..ev.dag.nodes.len() {
            if chosen.contains(&i) {
                continue;
            }
            let size = ev.dag.nodes[i].candidate.size_bytes;
            if used + size > budget {
                continue;
            }
            // Coverage bitmap heuristic: skip indexes that would not give
            // any so-far-uncovered workload pattern an index.
            if knobs.coverage_bitmap && ev.coverage[i] & !covered == 0 {
                continue;
            }
            let mut with = chosen.clone();
            with.push(i);
            let marginal = current - ev.cost(&with);
            if marginal <= 0.0 {
                continue;
            }
            let ratio = marginal / size.max(1) as f64;
            if best.is_none_or(|(_, _, r)| ratio > r) {
                best = Some((i, marginal, ratio));
            }
        }
        let Some((i, marginal, ratio)) = best else {
            // Single additions have stalled. Disjunctive predicates only
            // pay off when every branch of an OR group is covered at once
            // (index interaction the one-at-a-time loop cannot see), so
            // try adding one whole group as a unit.
            if let Some(added) = try_or_group_add(ev, &chosen, covered, budget, knobs) {
                for &i in &added {
                    covered |= ev.coverage[i];
                    trace.push(format!(
                        "add {} (OR-group member)",
                        ev.dag.nodes[i].candidate.pattern
                    ));
                }
                chosen.extend(added);
                continue;
            }
            break;
        };
        covered |= ev.coverage[i];
        trace.push(format!(
            "add {} (marginal benefit {:.1}, ratio {:.6})",
            ev.dag.nodes[i].candidate.pattern, marginal, ratio
        ));
        chosen.push(i);
    }

    // Eviction pass: reclaim space held by indexes whose removal does not
    // hurt (their patterns are covered by other chosen indexes).
    let mut changed = knobs.eviction;
    while changed {
        changed = false;
        let current = ev.cost(&chosen);
        for pos in 0..chosen.len() {
            let mut without = chosen.clone();
            let node = without.remove(pos);
            if ev.cost(&without) <= current + 1e-9 {
                trace.push(format!(
                    "evict redundant {} (no benefit loss, reclaim {} KiB)",
                    ev.dag.nodes[node].candidate.pattern,
                    ev.dag.nodes[node].candidate.size_bytes / 1024
                ));
                chosen = without;
                changed = true;
                break;
            }
        }
    }

    // Guarantee: drop any index no query's best plan uses.
    if knobs.drop_unused {
        let (_, used_per_query) = ev.detail(&chosen);
        let used_set: std::collections::HashSet<usize> =
            used_per_query.iter().flatten().copied().collect();
        chosen.retain(|i| {
            let keep = used_set.contains(i);
            if !keep {
                trace.push(format!(
                    "drop unused {} (not used by any plan)",
                    ev.dag.nodes[*i].candidate.pattern
                ));
            }
            keep
        });
    }

    outcome(ev, chosen, trace)
}

/// Find one OR group whose branches can all be covered by adding new
/// candidates within budget with positive combined marginal benefit.
/// Returns the candidate set to add, or `None`. Shared with the anytime
/// driver, whose greedy phase must mirror [`greedy_heuristic`] exactly.
pub(crate) fn try_or_group_add(
    ev: &mut WhatIfEngine<'_>,
    chosen: &[usize],
    covered: u128,
    budget: u64,
    knobs: GreedyKnobs,
) -> Option<Vec<usize>> {
    let groups = ev.or_groups();
    let used: u64 = ev.size(chosen);
    let current = ev.cost(chosen);
    for branches in groups {
        // Nothing to do if the group is already fully covered.
        if knobs.coverage_bitmap && branches.iter().all(|b| b & covered != 0) {
            continue;
        }
        // Per branch, the cheapest candidate covering any of its atoms.
        let mut add: Vec<usize> = Vec::new();
        let mut ok = true;
        for branch_mask in &branches {
            if branch_mask & covered != 0 {
                continue; // branch already covered by a chosen index
            }
            let best = (0..ev.dag.nodes.len())
                .filter(|i| !chosen.contains(i) && !add.contains(i))
                .filter(|&i| ev.coverage[i] & branch_mask != 0)
                .min_by_key(|&i| ev.dag.nodes[i].candidate.size_bytes);
            match best {
                Some(i) => add.push(i),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || add.is_empty() {
            continue;
        }
        let add_size: u64 = add
            .iter()
            .map(|&i| ev.dag.nodes[i].candidate.size_bytes)
            .sum();
        if used + add_size > budget {
            continue;
        }
        let mut with = chosen.to_vec();
        with.extend(&add);
        if current - ev.cost(&with) > 0.0 {
            return Some(add);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Strategy 3: top-down DAG search.
// ---------------------------------------------------------------------------

fn top_down(ev: &mut WhatIfEngine<'_>, budget: u64) -> SearchOutcome {
    let mut chosen: Vec<usize> = ev
        .dag
        .roots()
        .into_iter()
        // Roots that cannot help any workload atom are dead weight.
        .filter(|&i| ev.coverage[i] != 0 || ev.atoms.is_empty())
        .collect();
    let mut trace = vec![format!(
        "top-down: start from {} DAG roots, size {} KiB (budget {} KiB)",
        chosen.len(),
        ev.size(&chosen) / 1024,
        budget / 1024
    )];

    loop {
        let total = ev.size(&chosen);
        if total <= budget {
            break;
        }
        // Replace the largest index that has children with its children.
        let expandable = chosen
            .iter()
            .copied()
            .filter(|&i| !ev.dag.nodes[i].children.is_empty())
            .max_by_key(|&i| ev.dag.nodes[i].candidate.size_bytes);
        if let Some(victim) = expandable {
            chosen.retain(|&i| i != victim);
            let mut added = Vec::new();
            for &ch in &ev.dag.nodes[victim].children {
                if !chosen.contains(&ch) {
                    chosen.push(ch);
                    added.push(ch);
                }
            }
            trace.push(format!(
                "replace {} ({} KiB) with {} children ({})",
                ev.dag.nodes[victim].candidate.pattern,
                ev.dag.nodes[victim].candidate.size_bytes / 1024,
                added.len(),
                added
                    .iter()
                    .map(|&c| ev.dag.nodes[c].candidate.pattern.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        } else {
            // Leaves only: drop the index whose removal hurts least.
            let current = ev.cost(&chosen);
            let victim_pos = (0..chosen.len()).min_by(|&a, &b| {
                let mut wa = chosen.clone();
                wa.remove(a);
                let mut wb = chosen.clone();
                wb.remove(b);
                let loss_a = ev.cost(&wa) - current;
                let loss_b = ev.cost(&wb) - current;
                // Prefer dropping big, low-loss indexes.
                let score_a = loss_a / ev.dag.nodes[chosen[a]].candidate.size_bytes.max(1) as f64;
                let score_b = loss_b / ev.dag.nodes[chosen[b]].candidate.size_bytes.max(1) as f64;
                score_a
                    .partial_cmp(&score_b)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            match victim_pos {
                Some(pos) => {
                    let victim = chosen.remove(pos);
                    trace.push(format!(
                        "drop {} ({} KiB) to meet budget",
                        ev.dag.nodes[victim].candidate.pattern,
                        ev.dag.nodes[victim].candidate.size_bytes / 1024
                    ));
                }
                None => break, // empty configuration: nothing fits
            }
        }
    }
    trace.push(format!("final size {} KiB", ev.size(&chosen) / 1024));
    outcome(ev, chosen, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_basic_candidates;
    use crate::generalize::{generalize, GeneralizationConfig};
    use xia_xml::DocumentBuilder;

    /// Regional store: items under several region elements so
    /// generalization produces /site/*/item/... patterns.
    fn collection(n: usize) -> Collection {
        let regions = ["africa", "asia", "europe", "namerica"];
        let mut c = Collection::new("shop");
        for i in 0..n {
            let mut b = DocumentBuilder::new();
            b.open("site");
            b.open(regions[i % regions.len()]);
            b.open("item");
            b.leaf("price", &format!("{}", i % 40));
            b.leaf("quantity", &format!("{}", i % 7));
            b.close();
            b.close();
            b.close();
            c.insert(b.finish().unwrap());
        }
        c
    }

    fn setup(n: usize, queries: &[&str]) -> (Collection, Workload, Dag) {
        let c = collection(n);
        let w = Workload::from_queries(queries, "shop").unwrap();
        let basics = generate_basic_candidates(&c, &w);
        let dag = generalize(&c, &basics, &GeneralizationConfig::default());
        (c, w, dag)
    }

    const QUERIES: &[&str] = &[
        "/site/africa/item[price = 3]/quantity",
        "/site/asia/item[price = 17]/quantity",
        "/site/europe/item[quantity = 2]/price",
    ];

    #[test]
    fn all_strategies_respect_budget_and_benefit() {
        let (c, w, dag) = setup(400, QUERIES);
        let model = CostModel::default();
        let budget = 1 << 20;
        for strat in [
            SearchStrategy::GreedyBaseline,
            SearchStrategy::GreedyHeuristic,
            SearchStrategy::TopDown,
        ] {
            let out = search(&c, &model, &w, &dag, budget, strat);
            assert!(out.size_bytes <= budget, "{strat}: over budget");
            assert!(
                out.workload_cost <= out.base_cost + 1e-6,
                "{strat}: config must not hurt ({} vs {})",
                out.workload_cost,
                out.base_cost
            );
            assert!(out.benefit() > 0.0, "{strat}: expected positive benefit");
            assert!(!out.trace.is_empty());
        }
    }

    #[test]
    fn greedy_heuristic_recommends_only_used_indexes() {
        let (c, w, dag) = setup(400, QUERIES);
        let out = search(
            &c,
            &CostModel::default(),
            &w,
            &dag,
            1 << 20,
            SearchStrategy::GreedyHeuristic,
        );
        let used: std::collections::HashSet<usize> =
            out.used_per_query.iter().flatten().copied().collect();
        for &i in &out.chosen {
            assert!(
                used.contains(&i),
                "recommended index {} is not used by any query",
                dag.nodes[i].candidate.pattern
            );
        }
    }

    #[test]
    fn tiny_budget_yields_small_or_empty_config() {
        let (c, w, dag) = setup(200, QUERIES);
        let out = search(
            &c,
            &CostModel::default(),
            &w,
            &dag,
            64, // 64 bytes: nothing real fits
            SearchStrategy::GreedyHeuristic,
        );
        assert!(out.size_bytes <= 64);
        assert!(out.chosen.is_empty());
    }

    #[test]
    fn top_down_prefers_general_indexes_with_big_budget() {
        let (c, w, dag) = setup(400, QUERIES);
        let out = search(
            &c,
            &CostModel::default(),
            &w,
            &dag,
            8 << 20,
            SearchStrategy::TopDown,
        );
        // With a generous budget, top-down keeps the roots: at least one
        // chosen index should be a generalized (non-basic) pattern.
        assert!(
            out.chosen.iter().any(|&i| !dag.nodes[i].candidate.basic),
            "expected a generalized index among {:?}",
            out.chosen
                .iter()
                .map(|&i| dag.nodes[i].candidate.pattern.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn top_down_descends_when_budget_shrinks() {
        let (c, w, dag) = setup(400, QUERIES);
        let model = CostModel::default();
        let big = search(&c, &model, &w, &dag, 8 << 20, SearchStrategy::TopDown);
        // Budget below the root configuration size forces descent.
        let budget = big.size_bytes.saturating_sub(1).max(1);
        let small = search(&c, &model, &w, &dag, budget, SearchStrategy::TopDown);
        assert!(small.size_bytes <= budget);
        assert!(
            small
                .trace
                .iter()
                .any(|t| t.contains("replace") || t.contains("drop")),
            "trace should show descent: {:?}",
            small.trace
        );
    }

    #[test]
    fn update_heavy_workload_shrinks_recommendation() {
        let c = collection(400);
        let mut read_only = Workload::from_queries(QUERIES, "shop").unwrap();
        let basics = generate_basic_candidates(&c, &read_only);
        let dag = generalize(&c, &basics, &GeneralizationConfig::default());
        let model = CostModel::default();
        let ro = search(
            &c,
            &model,
            &read_only,
            &dag,
            1 << 20,
            SearchStrategy::GreedyHeuristic,
        );

        // Same queries plus very frequent inserts.
        let sample = c.get(xia_storage::DocId(0)).unwrap().clone();
        read_only.add_insert(sample, 100_000.0);
        let uh = search(
            &c,
            &model,
            &read_only,
            &dag,
            1 << 20,
            SearchStrategy::GreedyHeuristic,
        );
        assert!(
            uh.chosen.len() <= ro.chosen.len(),
            "update-heavy ({:?}) should not out-index read-only ({:?})",
            uh.chosen,
            ro.chosen
        );
    }

    #[test]
    fn baseline_can_pick_redundant_indexes_heuristic_does_not() {
        let (c, w, dag) = setup(400, QUERIES);
        let model = CostModel::default();
        let base = search(
            &c,
            &model,
            &w,
            &dag,
            8 << 20,
            SearchStrategy::GreedyBaseline,
        );
        let heur = search(
            &c,
            &model,
            &w,
            &dag,
            8 << 20,
            SearchStrategy::GreedyHeuristic,
        );
        // The heuristic never recommends more indexes than queries it can
        // serve; the baseline may (that is its documented weakness).
        assert!(heur.chosen.len() <= base.chosen.len().max(heur.chosen.len()));
        // And the heuristic's recommendation is all-used (checked above);
        // here we just confirm both produce benefit.
        assert!(base.benefit() > 0.0);
        assert!(heur.benefit() > 0.0);
    }
}
