//! Replay every committed `.case` regression file under the full set of
//! oracle invariants. Each file is a bug the oracle once found (or a
//! hand-written boundary case); this test keeps them fixed forever.

use xia_oracle::{check_case, Case, CheckOptions};

#[test]
fn corpus_replays_clean() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&corpus)
        .expect("crates/oracle/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "corpus must hold at least one .case file"
    );

    let scratch = std::env::temp_dir().join(format!("xia_oracle_corpus_{}", std::process::id()));
    let opts = CheckOptions {
        scratch: Some(scratch.clone()),
        check_recommend: true,
        check_advise: true,
        check_exec_parity: true,
    };
    let mut failures = Vec::new();
    for path in &entries {
        let text = std::fs::read_to_string(path).expect("readable case file");
        let case = match Case::from_text(&text) {
            Ok(c) => c,
            Err(e) => {
                failures.push(format!("{}: unparseable case: {e}", path.display()));
                continue;
            }
        };
        for v in check_case(&case, &opts) {
            failures.push(format!("{}: {v}", path.display()));
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}
