//! Property tests tying the oracle's reference semantics to the index
//! layer's label-path matcher: for pure structural queries, a node is in
//! the navigational result set exactly when its root-to-node label path
//! matches the query pattern. This is the bridge the containment
//! invariant stands on — if it breaks, "agrees with the corpus" means
//! nothing.

use proptest::prelude::*;
use xia_xml::{Document, DocumentBuilder, NodeKind};
use xia_xpath::LinearPath;

const LABELS: [&str; 4] = ["a", "b", "c", "d"];

/// A tiny recursive tree: (label index, children).
#[derive(Debug, Clone)]
struct Tree {
    label: usize,
    kids: Vec<Tree>,
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (0..LABELS.len()).prop_map(|label| Tree {
        label,
        kids: Vec::new(),
    });
    leaf.prop_recursive(3, 24, 3, |inner| {
        ((0..LABELS.len()), prop::collection::vec(inner, 0..3))
            .prop_map(|(label, kids)| Tree { label, kids })
    })
}

/// A random structural linear path (`/` or `//` axes, labels or `*`).
fn path_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(((0..LABELS.len() + 1), (0..2usize)), 1..4).prop_map(|steps| {
        let mut out = String::new();
        for (test, desc) in steps {
            out.push_str(if desc == 1 { "//" } else { "/" });
            if test == LABELS.len() {
                out.push('*');
            } else {
                out.push_str(LABELS[test]);
            }
        }
        out
    })
}

fn build(tree: &Tree, b: &mut DocumentBuilder) {
    b.open(LABELS[tree.label]);
    for kid in &tree.kids {
        build(kid, b);
    }
    b.close();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Navigational evaluation selects a node iff `matches_label_path`
    /// accepts its root-to-node label vector.
    #[test]
    fn evaluate_agrees_with_label_path_matcher(
        tree in tree_strategy(),
        path_text in path_strategy(),
    ) {
        let mut builder = DocumentBuilder::new();
        build(&tree, &mut builder);
        let doc: Document = builder.finish().unwrap();
        let path = LinearPath::parse(&path_text).unwrap();
        let location = xia_xpath::parse(&path_text).unwrap();

        let selected: std::collections::BTreeSet<u32> =
            xia_xpath::evaluate(&doc, &location).into_iter().map(|n| n.as_u32()).collect();

        let root = doc.root_element().unwrap();
        for node in doc.descendants(root) {
            if doc.kind(node) != NodeKind::Element {
                continue;
            }
            // Root-to-node label vector via parent links.
            let mut labels = Vec::new();
            let mut cur = Some(node);
            while let Some(n) = cur {
                labels.push(doc.name(n));
                cur = doc.parent(n);
            }
            labels.reverse();
            let matched = path.matches_label_path(&labels, false);
            prop_assert_eq!(
                matched,
                selected.contains(&node.as_u32()),
                "node {:?} (labels {:?}) vs path {}",
                node, labels, path_text
            );
        }
    }

    /// Containment, checked against the matcher: if `contains(P, Q)` then
    /// every label path accepted by Q is accepted by P.
    #[test]
    fn containment_is_sound_on_label_paths(
        tree in tree_strategy(),
        p_text in path_strategy(),
        q_text in path_strategy(),
    ) {
        let p = LinearPath::parse(&p_text).unwrap();
        let q = LinearPath::parse(&q_text).unwrap();
        if !xia_index::contains(&p, &q) {
            return Ok(());
        }
        let mut builder = DocumentBuilder::new();
        build(&tree, &mut builder);
        let doc: Document = builder.finish().unwrap();
        let root = doc.root_element().unwrap();
        for node in doc.descendants(root) {
            if doc.kind(node) != NodeKind::Element {
                continue;
            }
            let mut labels = Vec::new();
            let mut cur = Some(node);
            while let Some(n) = cur {
                labels.push(doc.name(n));
                cur = doc.parent(n);
            }
            labels.reverse();
            if q.matches_label_path(&labels, false) {
                prop_assert!(
                    p.matches_label_path(&labels, false),
                    "contains({}, {}) but {:?} matches only Q",
                    p_text, q_text, labels
                );
            }
        }
    }
}
