//! Seeded multi-tenant isolation oracle (`xia fuzz --tenants`).
//!
//! Drives a real daemon over TCP with N named tenants plus the default
//! namespace, hammered by concurrent seeded clients that interleave
//! tenant-scoped INSERT/QUERY/STATS/TENANT traffic. Every insert
//! carries a per-tenant *marker* price, so leakage is directly
//! observable: a marker surfacing under any other tenant is a
//! namespace violation, not a statistical anomaly.
//!
//! Invariants, checked from the client side of the wire:
//!
//! 1. **write isolation** — after the sweep, each tenant's marker count
//!    equals exactly the inserts acknowledged for that tenant, and
//!    every foreign marker counts zero (checked both mid-race and at
//!    quiescence). A write applied to the wrong snapshot, a snapshot
//!    read through the wrong cell, or a shed insert that committed
//!    anyway all split these counts.
//! 2. **default-namespace compatibility** — requests without a
//!    `tenant` field and requests with `tenant: "default"` address the
//!    same data; the TENANT registry lists every namespace with doc
//!    counts matching the per-tenant queries.
//! 3. **restart parity** — on durable rounds the daemon is stopped and
//!    reopened over the same data directory; every named tenant must
//!    be rediscovered from its `tenants/<name>` subdirectory with its
//!    marker count intact (WAL replay includes the namespace's
//!    provisioning, not just its writes).
//! 4. **shed hygiene** — per-tenant saturation answers are well-formed
//!    BUSY frames with a positive `retry_after_ms`, and a shed write
//!    never reaches the committer (covered by invariant 1's counts).
//!
//! As with [`crate::interleave`], thread scheduling is the OS's; what
//! is seeded is each client's op stream, and the invariants hold for
//! every interleaving.

use crate::rng::Rng;
use xia_server::{Client, DurabilityConfig, Server, ServerConfig, Value};
use xia_storage::Database;
use xia_xml::Document;

/// Configuration for one multi-tenant sweep.
#[derive(Debug, Clone)]
pub struct TenantsConfig {
    pub seed: u64,
    /// Independent rounds (fresh daemon + data directory each).
    pub rounds: u64,
    /// Named tenants per round (the default namespace rides along).
    pub tenants: usize,
    /// Concurrent client threads per round.
    pub clients: usize,
    /// Ops issued by each client per round.
    pub ops_per_client: u64,
    /// Per-tenant in-flight cap, squeezed so saturation sheds can fire.
    pub tenant_max_in_flight: u64,
}

impl TenantsConfig {
    pub fn new(seed: u64, rounds: u64) -> TenantsConfig {
        TenantsConfig {
            seed,
            rounds,
            tenants: 6,
            clients: 6,
            ops_per_client: 20,
            tenant_max_in_flight: 2,
        }
    }
}

/// Result of a multi-tenant sweep.
#[derive(Debug, Clone, Default)]
pub struct TenantsReport {
    pub rounds_run: u64,
    pub requests_sent: u64,
    pub inserts_acked: u64,
    /// Per-tenant saturation BUSY answers observed by clients.
    pub sheds_seen: u64,
    /// Durable rounds that passed the stop/reopen parity leg.
    pub restarts_checked: u64,
    pub failures: Vec<String>,
}

impl TenantsReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

const COLLECTION: &str = "c0";
/// Docs seeded into the default tenant's collection before the sweep.
const DEFAULT_SEED_DOCS: usize = 2;

/// The marker price tagged onto every insert for tenant index `ti`
/// (index 0 is the default namespace). Seed docs use prices < 100, so
/// markers never collide with them.
fn marker(ti: usize) -> usize {
    500 + ti
}

fn tenant_name(ti: usize) -> String {
    if ti == 0 {
        "default".to_string()
    } else {
        format!("t{}", ti - 1)
    }
}

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_collection(COLLECTION);
    for i in 0..DEFAULT_SEED_DOCS {
        db.collection_mut(COLLECTION).unwrap().insert(
            Document::parse(&format!(
                "<r><item id=\"seed{i}\"><price>{i}</price></item></r>"
            ))
            .unwrap(),
        );
    }
    db
}

/// A tenant-scoped request: the default namespace sometimes names
/// itself explicitly, pinning the `tenant: "default"` alias.
fn scoped(mut fields: Vec<(&str, Value)>, ti: usize, explicit_default: bool) -> Value {
    if ti > 0 || explicit_default {
        fields.push(("tenant", Value::str(tenant_name(ti))));
    }
    Value::obj(fields)
}

fn count_query(c: &mut Client, ti: usize, m: usize, explicit_default: bool) -> Result<f64, String> {
    let req = scoped(
        vec![
            ("cmd", Value::str("query")),
            ("q", Value::str(format!("//item[price = {m}]"))),
            ("collection", Value::str(COLLECTION)),
        ],
        ti,
        explicit_default,
    );
    let resp = c.call(&req).map_err(|e| e.to_string())?;
    if resp.get_bool("busy") == Some(true) {
        return Err("busy".to_string());
    }
    match (resp.get_bool("ok"), resp.get_f64("results")) {
        (Some(true), Some(n)) => Ok(n),
        _ => Err(format!("malformed query response: {resp}")),
    }
}

/// Outcome tallies from one client thread.
#[derive(Default)]
struct ClientTally {
    requests: u64,
    /// Acked inserts per tenant index.
    acked: Vec<u64>,
    sheds: u64,
    failures: Vec<String>,
}

fn drive_client(
    addr: std::net::SocketAddr,
    rng: &mut Rng,
    config: &TenantsConfig,
    tally: &mut ClientTally,
) {
    let namespaces = config.tenants + 1;
    tally.acked = vec![0; namespaces];
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            tally.failures.push(format!("client connect failed: {e}"));
            return;
        }
    };
    for _ in 0..config.ops_per_client {
        let ti = rng.below(namespaces);
        let explicit_default = rng.chance(1, 2);
        match rng.below(10) {
            // Most ops insert the tenant's marker doc.
            0..=5 => {
                let n = rng.below(100_000);
                let req = scoped(
                    vec![
                        ("cmd", Value::str("insert")),
                        ("collection", Value::str(COLLECTION)),
                        (
                            "xml",
                            Value::str(format!(
                                "<r><item id=\"x{n}\"><price>{}</price></item></r>",
                                marker(ti)
                            )),
                        ),
                    ],
                    ti,
                    explicit_default,
                );
                tally.requests += 1;
                match c.call(&req) {
                    Ok(resp) => {
                        if resp.get_bool("busy") == Some(true) {
                            tally.sheds += 1;
                            match resp.get_f64("retry_after_ms") {
                                Some(ms) if ms > 0.0 => {}
                                _ => tally.failures.push(format!(
                                    "shed BUSY without positive retry_after_ms: {resp}"
                                )),
                            }
                        } else if resp.get_bool("ok") == Some(true) {
                            tally.acked[ti] += 1;
                        } else {
                            tally
                                .failures
                                .push(format!("insert failed abnormally: {resp}"));
                        }
                    }
                    Err(e) => tally.failures.push(format!("insert transport error: {e}")),
                }
            }
            // Mid-race isolation probe: a foreign marker must count zero
            // under this tenant, at every instant of the sweep.
            6 | 7 => {
                let other = (ti + 1 + rng.below(namespaces - 1)) % namespaces;
                tally.requests += 1;
                match count_query(&mut c, ti, marker(other), explicit_default) {
                    Ok(n) if n != 0.0 => tally.failures.push(format!(
                        "LEAK: tenant '{}' sees {n} docs with tenant '{}' marker",
                        tenant_name(ti),
                        tenant_name(other)
                    )),
                    Ok(_) => {}
                    Err(e) if e == "busy" => tally.sheds += 1,
                    Err(e) => tally.failures.push(format!("probe query failed: {e}")),
                }
            }
            // Control plane: the registry never sheds and always lists
            // every namespace.
            8 => {
                tally.requests += 1;
                match c.command("tenant") {
                    Ok(resp) => match resp.get("tenants") {
                        Some(Value::Arr(items)) if items.len() == namespaces => {}
                        Some(Value::Arr(items)) => tally.failures.push(format!(
                            "registry lists {} namespaces, expected {namespaces}",
                            items.len()
                        )),
                        _ => tally
                            .failures
                            .push(format!("malformed tenant list: {resp}")),
                    },
                    Err(e) => tally.failures.push(format!("tenant list failed: {e}")),
                }
            }
            // Own-marker query: exercises the read path under load; the
            // count is racy mid-sweep, so only well-formedness is checked.
            _ => {
                tally.requests += 1;
                if let Err(e) = count_query(&mut c, ti, marker(ti), explicit_default) {
                    if e == "busy" {
                        tally.sheds += 1;
                    } else {
                        tally.failures.push(format!("own-marker query failed: {e}"));
                    }
                }
            }
        }
    }
}

/// Check every per-tenant marker count against the acked totals, from a
/// fresh clean connection. `label` distinguishes pre/post-restart legs.
fn check_counts(
    addr: std::net::SocketAddr,
    acked: &[u64],
    label: &str,
    failures: &mut Vec<String>,
) {
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            failures.push(format!("{label}: verify connect failed: {e}"));
            return;
        }
    };
    let namespaces = acked.len();
    for (ti, &acked_n) in acked.iter().enumerate() {
        match count_query(&mut c, ti, marker(ti), ti == 0) {
            Ok(n) if n == acked_n as f64 => {}
            Ok(n) => failures.push(format!(
                "{label}: tenant '{}' has {n} marker docs, acked {acked_n}",
                tenant_name(ti)
            )),
            Err(e) => failures.push(format!(
                "{label}: verify query for '{}' failed: {e}",
                tenant_name(ti)
            )),
        }
        for other in 0..namespaces {
            if other == ti {
                continue;
            }
            match count_query(&mut c, ti, marker(other), false) {
                Ok(n) if n != 0.0 => failures.push(format!(
                    "{label}: LEAK: tenant '{}' sees {n} docs with tenant '{}' marker",
                    tenant_name(ti),
                    tenant_name(other)
                )),
                Ok(_) => {}
                Err(e) => failures.push(format!("{label}: foreign probe failed: {e}")),
            }
        }
    }
    // The bare and explicit spellings of the default namespace agree.
    let bare = count_query(&mut c, 0, marker(0), false);
    let named = count_query(&mut c, 0, marker(0), true);
    if let (Ok(a), Ok(b)) = (&bare, &named) {
        if a != b {
            failures.push(format!(
                "{label}: default-namespace alias split: bare {a} vs tenant:\"default\" {b}"
            ));
        }
    }
    // The registry's doc counts reconcile with the queries.
    match c.command("tenant") {
        Ok(resp) => match resp.get("tenants") {
            Some(Value::Arr(items)) => {
                if items.len() != namespaces {
                    failures.push(format!(
                        "{label}: registry lists {} namespaces, expected {namespaces}",
                        items.len()
                    ));
                }
                for item in items {
                    let Some(name) = item.get_str("name") else {
                        failures.push(format!("{label}: registry entry without name: {item}"));
                        continue;
                    };
                    let Some(ti) = (0..namespaces).find(|&i| tenant_name(i) == name) else {
                        failures.push(format!("{label}: unexpected namespace '{name}'"));
                        continue;
                    };
                    let seeds = if ti == 0 { DEFAULT_SEED_DOCS as u64 } else { 0 };
                    let want = (acked[ti] + seeds) as f64;
                    if item.get_f64("documents") != Some(want) {
                        failures.push(format!(
                            "{label}: registry says '{name}' holds {:?} docs, queries say {want}",
                            item.get_f64("documents")
                        ));
                    }
                }
            }
            _ => failures.push(format!("{label}: malformed tenant list: {resp}")),
        },
        Err(e) => failures.push(format!("{label}: tenant list failed: {e}")),
    }
    // Error hygiene: unknown namespaces and invalid names answer with
    // clean errors, not crashes or silent defaults.
    match c.call(&Value::obj(vec![
        ("cmd", Value::str("ping")),
        ("tenant", Value::str("no-such-tenant")),
    ])) {
        Ok(resp) => {
            let err = resp.get_str("error").unwrap_or("");
            if resp.get_bool("ok") != Some(false) || !err.contains("unknown tenant") {
                failures.push(format!("{label}: unknown tenant not rejected: {resp}"));
            }
        }
        Err(e) => failures.push(format!("{label}: unknown-tenant probe failed: {e}")),
    }
    match c.call(&Value::obj(vec![
        ("cmd", Value::str("tenant")),
        ("name", Value::str("bad/name")),
    ])) {
        Ok(resp) => {
            if resp.get_bool("ok") != Some(false) {
                failures.push(format!("{label}: invalid tenant name accepted: {resp}"));
            }
        }
        Err(e) => failures.push(format!("{label}: invalid-name probe failed: {e}")),
    }
}

fn server_config(scratch: Option<&std::path::Path>, config: &TenantsConfig) -> ServerConfig {
    ServerConfig {
        threads: 4,
        durability: scratch.map(DurabilityConfig::at),
        tenant_max_in_flight: Some(config.tenant_max_in_flight),
        ..ServerConfig::default()
    }
}

fn run_round(
    round: u64,
    config: &TenantsConfig,
    rng: &mut Rng,
    scratch: Option<&std::path::Path>,
    report: &mut TenantsReport,
) {
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(dir);
    }
    let server = match Server::start(seed_db(), server_config(scratch, config)) {
        Ok(s) => s,
        Err(e) => {
            report
                .failures
                .push(format!("round {round}: server failed to start: {e}"));
            return;
        }
    };
    let addr = server.addr();

    // Provision the named tenants up front, from one setup connection.
    // Creation is idempotent; re-creating t0 must not wipe it.
    match Client::connect(addr) {
        Ok(mut c) => {
            for ti in 1..=config.tenants {
                let req = Value::obj(vec![
                    ("cmd", Value::str("tenant")),
                    ("name", Value::str(tenant_name(ti))),
                    ("collections", Value::Arr(vec![Value::str(COLLECTION)])),
                ]);
                match c.call(&req) {
                    Ok(resp) if resp.get_bool("ok") == Some(true) => {}
                    Ok(resp) => report
                        .failures
                        .push(format!("round {round}: tenant create failed: {resp}")),
                    Err(e) => report
                        .failures
                        .push(format!("round {round}: tenant create failed: {e}")),
                }
            }
        }
        Err(e) => {
            report
                .failures
                .push(format!("round {round}: setup connect failed: {e}"));
            server.stop();
            return;
        }
    }

    // Seeded clients race tenant-scoped traffic.
    let mut handles = Vec::new();
    for _ in 0..config.clients.max(1) {
        let mut crng = Rng::new(rng.next_u64());
        let cfg = config.clone();
        handles.push(std::thread::spawn(move || {
            let mut tally = ClientTally::default();
            drive_client(addr, &mut crng, &cfg, &mut tally);
            tally
        }));
    }
    let mut acked = vec![0u64; config.tenants + 1];
    for h in handles {
        let tally = h.join().expect("client thread");
        report.requests_sent += tally.requests;
        report.sheds_seen += tally.sheds;
        for (ti, n) in tally.acked.iter().enumerate() {
            acked[ti] += n;
        }
        report.failures.extend(
            tally
                .failures
                .into_iter()
                .map(|f| format!("round {round}: {f}")),
        );
    }
    report.inserts_acked += acked.iter().sum::<u64>();

    // Quiescent verification, then (on durable rounds) the restart leg.
    let mut failures = Vec::new();
    check_counts(addr, &acked, "live", &mut failures);
    server.stop();
    if let Some(dir) = scratch {
        match Server::start(seed_db(), server_config(Some(dir), config)) {
            Ok(reopened) => {
                check_counts(reopened.addr(), &acked, "restart", &mut failures);
                reopened.stop();
                if failures.iter().all(|f| !f.starts_with("restart")) {
                    report.restarts_checked += 1;
                }
            }
            Err(e) => failures.push(format!("restart: daemon failed to reopen: {e}")),
        }
        let _ = std::fs::remove_dir_all(dir);
    }
    report
        .failures
        .extend(failures.into_iter().map(|f| format!("round {round}: {f}")));
}

/// Run the multi-tenant sweep. `progress` is called after each round
/// with (rounds_done, failures_so_far).
pub fn run_tenants(config: &TenantsConfig, mut progress: impl FnMut(u64, usize)) -> TenantsReport {
    let scratch_root = std::env::temp_dir().join(format!(
        "xia_tenants_{}_{}",
        std::process::id(),
        config.seed
    ));
    let _ = std::fs::create_dir_all(&scratch_root);
    let mut report = TenantsReport::default();
    let mut master = Rng::new(config.seed ^ 0xd6e8_feb8_6659_fd93);
    for round in 0..config.rounds {
        let mut round_rng = Rng::new(master.next_u64());
        // Every other round runs durable for the restart-parity leg.
        let scratch = (round % 2 == 0).then(|| scratch_root.join(format!("r{round}")));
        run_round(
            round,
            config,
            &mut round_rng,
            scratch.as_deref(),
            &mut report,
        );
        report.rounds_run += 1;
        progress(report.rounds_run, report.failures.len());
    }
    let _ = std::fs::remove_dir_all(&scratch_root);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned-seed smoke: a short multi-tenant sweep must be clean.
    /// The long pinned-seed sweep lives in scripts/check.sh
    /// (`xia fuzz --tenants --seed 42`).
    #[test]
    fn short_tenants_sweep_is_clean() {
        let report = run_tenants(&TenantsConfig::new(42, 2), |_, _| {});
        assert_eq!(report.rounds_run, 2);
        assert!(report.ok(), "{:#?}", report.failures);
        assert!(report.inserts_acked > 0, "clients actually committed");
        assert_eq!(report.restarts_checked, 1, "the durable round restarted");
    }
}
