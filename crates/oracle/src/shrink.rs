//! Greedy case minimization: drop documents, queries, indexes, document
//! subtrees, query predicates, and trailing path steps while the failure
//! keeps reproducing, so committed corpus cases are small enough to read.

use crate::case::Case;
use crate::check::{check_case, CheckOptions};
use xia_xml::{serialize, Document, DocumentBuilder, NodeId, NodeKind};

/// Hard cap on re-checks per shrink so a pathological case can't stall
/// the fuzz loop.
const MAX_ATTEMPTS: usize = 400;

/// Shrink `case` while `check_case` keeps reporting a violation of the
/// same invariant as the original failure.
pub fn shrink(case: &Case, opts: &CheckOptions, invariant: &'static str) -> Case {
    let mut best = case.clone();
    let mut attempts = 0;
    let still_fails = |c: &Case, attempts: &mut usize| -> bool {
        *attempts += 1;
        check_case(c, opts).iter().any(|v| v.invariant == invariant)
    };

    loop {
        let mut progressed = false;

        // Drop whole components, largest first.
        for kind in 0..3 {
            let len = match kind {
                0 => best.docs.len(),
                1 => best.queries.len(),
                _ => best.indexes.len(),
            };
            // Removing from the end keeps earlier indices stable.
            for i in (0..len).rev() {
                if attempts >= MAX_ATTEMPTS {
                    return best;
                }
                let mut cand = best.clone();
                match kind {
                    0 => {
                        cand.docs.remove(i);
                    }
                    1 => {
                        if cand.queries.len() == 1 {
                            continue; // a case needs at least one query
                        }
                        cand.queries.remove(i);
                    }
                    _ => {
                        cand.indexes.remove(i);
                    }
                }
                if still_fails(&cand, &mut attempts) {
                    best = cand;
                    progressed = true;
                }
            }
        }

        // Un-poison the cost model if the bug isn't about NaN handling.
        if best.poison.is_some() && attempts < MAX_ATTEMPTS {
            let mut cand = best.clone();
            cand.poison = None;
            if still_fails(&cand, &mut attempts) {
                best = cand;
                progressed = true;
            }
        }

        // Simplify documents subtree by subtree.
        for di in 0..best.docs.len() {
            let mut sub = 0;
            loop {
                if attempts >= MAX_ATTEMPTS {
                    return best;
                }
                let Some(smaller) = drop_subtree(&best.docs[di], sub) else {
                    break;
                };
                let mut cand = best.clone();
                cand.docs[di] = smaller;
                if still_fails(&cand, &mut attempts) {
                    best = cand;
                    progressed = true;
                    // Same position again: the next subtree slid into it.
                } else {
                    sub += 1;
                }
            }
        }

        // Simplify queries and index patterns textually.
        for qi in 0..best.queries.len() {
            for cand_text in simplify_path_text(&best.queries[qi]) {
                if attempts >= MAX_ATTEMPTS {
                    return best;
                }
                if xia_xquery::compile(&cand_text, "c").is_err() {
                    continue;
                }
                let mut cand = best.clone();
                cand.queries[qi] = cand_text;
                if still_fails(&cand, &mut attempts) {
                    best = cand;
                    progressed = true;
                    break;
                }
            }
        }
        for ii in 0..best.indexes.len() {
            for cand_text in simplify_path_text(&best.indexes[ii].pattern) {
                if attempts >= MAX_ATTEMPTS {
                    return best;
                }
                if xia_xpath::LinearPath::parse(&cand_text).is_err() {
                    continue;
                }
                let mut cand = best.clone();
                cand.indexes[ii].pattern = cand_text;
                if still_fails(&cand, &mut attempts) {
                    best = cand;
                    progressed = true;
                    break;
                }
            }
        }

        if !progressed || attempts >= MAX_ATTEMPTS {
            return best;
        }
    }
}

/// Re-serialize `xml` with the `k`-th non-root element subtree removed
/// (document-order counting). `None` when there is no such subtree.
fn drop_subtree(xml: &str, k: usize) -> Option<String> {
    let doc = Document::parse(xml).ok()?;
    let root = doc.root_element()?;
    let mut seen = 0usize;
    let mut skip: Option<NodeId> = None;
    for node in doc.descendants(root) {
        if doc.kind(node) == NodeKind::Element {
            if seen == k {
                skip = Some(node);
                break;
            }
            seen += 1;
        }
    }
    let skip = skip?;
    let mut b = DocumentBuilder::new();
    copy_element(&doc, root, skip, &mut b);
    let rebuilt = b.finish().ok()?;
    Some(serialize(&rebuilt))
}

fn copy_element(doc: &Document, node: NodeId, skip: NodeId, b: &mut DocumentBuilder) {
    b.open(doc.name(node));
    // Attributes first (builder contract), then content in order.
    for attr in doc.attributes(node) {
        b.attr(doc.name(attr), doc.value(attr).unwrap_or(""));
    }
    for child in doc.children(node) {
        if child == skip {
            continue;
        }
        match doc.kind(child) {
            NodeKind::Element => copy_element(doc, child, skip, b),
            NodeKind::Text => {
                b.text(doc.value(child).unwrap_or(""));
            }
            NodeKind::Attribute => {}
        }
    }
    b.close();
}

/// Candidate simplifications of a path/query text: strip predicates,
/// drop the trailing step, halve very long paths.
fn simplify_path_text(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    // Strip the first [...] group (balanced, predicates don't nest
    // brackets in this fragment).
    if let (Some(open), Some(close)) = (text.find('['), text.rfind(']')) {
        if open < close {
            out.push(format!("{}{}", &text[..open], &text[close + 1..]));
        }
    }
    // Drop the trailing step (last '/' outside any predicate).
    if let Some(cut) = last_toplevel_slash(text) {
        if cut > 0 {
            out.push(text[..cut].to_string());
        }
    }
    // Halve long step chains so 70-step paths shrink in a few rounds, but
    // keep them past the 64-step boundary when the bug needs it (the
    // still-fails check decides).
    let slashes = text.matches('/').count();
    if slashes > 8 {
        if let Some(mid) = nth_toplevel_slash(text, slashes / 2) {
            if mid > 0 {
                out.push(text[..mid].to_string());
            }
        }
    }
    out
}

fn last_toplevel_slash(text: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut last = None;
    let mut prev_slash = false;
    for (i, ch) in text.char_indices() {
        match ch {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            '/' if depth == 0 && !prev_slash => {
                // Treat '//' as one cut point at its first '/'.
                last = Some(i);
            }
            _ => {}
        }
        prev_slash = ch == '/';
    }
    last
}

fn nth_toplevel_slash(text: &str, n: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut prev_slash = false;
    for (i, ch) in text.char_indices() {
        match ch {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            '/' if depth == 0 && !prev_slash => {
                if count == n {
                    return Some(i);
                }
                count += 1;
            }
            _ => {}
        }
        prev_slash = ch == '/';
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_subtree_removes_one_element() {
        let xml = "<a><b><c>1</c></b><d>2</d></a>";
        // Subtree 0 is <b> (with <c> inside), subtree 1 is <c>, 2 is <d>.
        assert_eq!(drop_subtree(xml, 0).unwrap(), "<a><d>2</d></a>");
        assert_eq!(drop_subtree(xml, 1).unwrap(), "<a><b/><d>2</d></a>");
        assert_eq!(drop_subtree(xml, 2).unwrap(), "<a><b><c>1</c></b></a>");
        assert!(drop_subtree(xml, 3).is_none());
    }

    #[test]
    fn simplify_strips_predicates_and_steps() {
        let cands = simplify_path_text("//a[b = 1]/c");
        assert!(cands.contains(&"//a/c".to_string()));
        assert!(cands.contains(&"//a[b = 1]".to_string()));
        let cands = simplify_path_text("//a");
        assert!(
            cands.is_empty(),
            "single-step path has no smaller form: {cands:?}"
        );
    }
}
