//! Seeded PRNG for the oracle: xorshift64*, no clocks, no global state.
//!
//! Every generated case is a pure function of the seed and case index,
//! so `xia fuzz --seed N` reproduces bit-identical runs anywhere.

/// xorshift64* — tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        // Never allow the all-zero state xorshift can't leave.
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15 | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(3) < 3);
            let v = r.range(2, 5);
            assert!((2..=5).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
