//! Seeded interleaved-writes oracle: hammer the server's committer with
//! concurrent seeded writers and pin the snapshot-isolation contract.
//!
//! This mode drives [`xia_server::Committer`] directly (no TCP), the
//! way the daemon's request handlers do, and checks three invariants:
//!
//! 1. **linearizability** — every acknowledged write carries a global
//!    `commit_seq`; replaying the acknowledged ops *in commit order*
//!    over the base database must reproduce the final published
//!    snapshot's fingerprint exactly. If the committer ever interleaved
//!    two staged batches, dropped an acked op, or published
//!    out-of-order, the fingerprints split.
//! 2. **prefix consistency** — a reader polling snapshots concurrently
//!    with the writers must see generations and per-collection doc
//!    counts that only move forward, and identical content whenever the
//!    generation is unchanged.
//! 3. **durability parity** — on rounds that run with a WAL, recovering
//!    from disk after the run must land on the same fingerprint as the
//!    commit-order replay (the WAL is written in commit order by
//!    construction of group commit; this checks it).
//!
//! Thread scheduling is the OS's — what is seeded is the *op content*,
//! so a failing seed reproduces the same op mix even though the exact
//! interleaving varies. The invariants hold for every interleaving.

use crate::rng::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use xia_server::{
    submit_and_wait, Committer, CommitterConfig, Metrics, SnapshotCell, WriteCmd, WriteOutcome,
};
use xia_storage::{fingerprint, recover_database, Database, DurableStore, RealVfs, WalOp};
use xia_xml::Document;
use xia_xpath::LinearPath;

/// Configuration for one interleaved-writes run.
#[derive(Debug, Clone)]
pub struct InterleaveConfig {
    pub seed: u64,
    /// Independent rounds (fresh database + committer each).
    pub rounds: u64,
    /// Concurrent writer threads per round.
    pub writers: usize,
    /// Ops submitted by each writer per round.
    pub ops_per_writer: u64,
}

impl InterleaveConfig {
    pub fn new(seed: u64, rounds: u64) -> InterleaveConfig {
        InterleaveConfig {
            seed,
            rounds,
            writers: 4,
            ops_per_writer: 25,
        }
    }
}

/// Result of an interleaved run.
#[derive(Debug, Clone, Default)]
pub struct InterleaveReport {
    pub rounds_run: u64,
    pub ops_acked: u64,
    pub failures: Vec<String>,
}

impl InterleaveReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

const PATTERNS: [&str; 4] = ["//item/price", "//item", "//name", "//item/b"];

fn base_db(rng: &mut Rng) -> Database {
    let mut db = Database::new();
    for name in ["c0", "c1"] {
        db.create_collection(name);
        for i in 0..rng.range(1, 4) {
            db.collection_mut(name).unwrap().insert(
                Document::parse(&format!(
                    "<r><item id=\"seed{i}\"><price>{i}</price></item></r>"
                ))
                .unwrap(),
            );
        }
    }
    db
}

fn gen_cmd(rng: &mut Rng) -> WriteCmd {
    let collection = if rng.chance(1, 2) { "c0" } else { "c1" }.to_string();
    match rng.below(10) {
        0..=6 => {
            let n = rng.below(1000);
            let xml = format!("<r><item id=\"x{n}\"><price>{n}</price></item></r>");
            let doc = Document::parse(&xml).unwrap();
            WriteCmd::Insert {
                collection,
                doc: Arc::new(doc),
                xml,
            }
        }
        7 | 8 => WriteCmd::CreateIndex {
            collection,
            data_type: if rng.chance(1, 2) {
                xia_index::DataType::Double
            } else {
                xia_index::DataType::Varchar
            },
            pattern: LinearPath::parse(rng.pick(&PATTERNS)).unwrap(),
            skip_if_exists: rng.chance(1, 2),
        },
        _ => WriteCmd::DropIndex {
            collection,
            // Often nonexistent: clean-error paths interleave too.
            id: rng.range(1, 6) as u32,
        },
    }
}

/// The WAL-equivalent of an *acknowledged* command, for the commit-order
/// replay. Mirrors what the committer logged for it.
fn replay_op(cmd: &WriteCmd, outcome: &WriteOutcome) -> Option<WalOp> {
    match (cmd, outcome) {
        (
            WriteCmd::Insert {
                collection, xml, ..
            },
            WriteOutcome::Inserted { .. },
        ) => Some(WalOp::Insert {
            collection: collection.clone(),
            xml: xml.clone(),
        }),
        (
            WriteCmd::CreateIndex {
                collection,
                data_type,
                pattern,
                ..
            },
            WriteOutcome::IndexCreated { id, .. },
        ) => Some(WalOp::CreateIndex {
            collection: collection.clone(),
            id: *id,
            data_type: *data_type,
            pattern: pattern.to_string(),
        }),
        (_, WriteOutcome::IndexExisted { .. }) => None, // no-op by design
        (WriteCmd::DropIndex { collection, .. }, WriteOutcome::IndexDropped { id }) => {
            Some(WalOp::DropIndex {
                collection: collection.clone(),
                id: *id,
            })
        }
        _ => None,
    }
}

fn run_round(
    round: u64,
    config: &InterleaveConfig,
    rng: &mut Rng,
    scratch: Option<&std::path::Path>,
    report: &mut InterleaveReport,
) {
    let db = base_db(rng);
    let fp_base = fingerprint(&db);
    let cell = Arc::new(SnapshotCell::new(db.clone()));
    let store = scratch.map(|dir| {
        let _ = std::fs::remove_dir_all(dir);
        let (mut s, _) = DurableStore::open(dir, Arc::new(RealVfs)).expect("scratch store opens");
        s.checkpoint(&db).expect("base checkpoint");
        Arc::new(Mutex::new(s))
    });
    let committer = Arc::new(Committer::start(
        cell.clone(),
        store,
        Arc::new(Metrics::new()),
        CommitterConfig {
            max_batch: 8, // small: force many multi-op batches
            checkpoint_every: None,
        },
    ));

    // Concurrent reader: prefix consistency while writers hammer.
    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let cell = cell.clone();
        let done = done.clone();
        std::thread::spawn(move || -> Result<(), String> {
            let (mut last_gen, mut last_counts) = (0u64, [0usize; 2]);
            while !done.load(Ordering::Relaxed) {
                let snap = cell.load_slow();
                let generation = snap.generation();
                let counts = [
                    snap.collection("c0").unwrap().len(),
                    snap.collection("c1").unwrap().len(),
                ];
                if generation < last_gen {
                    return Err(format!(
                        "generation went backwards: {last_gen}→{generation}"
                    ));
                }
                if generation == last_gen && counts != last_counts {
                    return Err(format!("generation {generation} changed content"));
                }
                if counts[0] < last_counts[0] || counts[1] < last_counts[1] {
                    return Err(format!("doc count shrank at generation {generation}"));
                }
                last_gen = generation;
                last_counts = counts;
            }
            Ok(())
        })
    };

    // Seeded writers: each gets its own op stream, all race the queue.
    let mut writers = Vec::new();
    for _ in 0..config.writers.max(1) {
        let mut wrng = Rng::new(rng.next_u64());
        let committer = committer.clone();
        let ops = config.ops_per_writer;
        writers.push(std::thread::spawn(move || {
            let mut acked: Vec<(u64, WalOp)> = Vec::new();
            for _ in 0..ops {
                let cmd = gen_cmd(&mut wrng);
                // Clone enough of the cmd to rebuild the replay op.
                let keep = clone_cmd(&cmd);
                match submit_and_wait(&committer, cmd) {
                    Ok(committed) => {
                        if let Some(op) = replay_op(&keep, &committed.outcome) {
                            acked.push((committed.commit_seq, op));
                        }
                    }
                    Err(e) => {
                        // Validation errors (e.g. dropping a missing
                        // index) are expected; queue-level failures are
                        // not possible here (no deadline, no shutdown).
                        let _ = e;
                    }
                }
            }
            acked
        }));
    }
    let mut acked: Vec<(u64, WalOp)> = writers
        .into_iter()
        .flat_map(|w| w.join().expect("writer thread"))
        .collect();
    done.store(true, Ordering::Relaxed);
    if let Err(e) = reader.join().expect("reader thread") {
        report.failures.push(format!(
            "round {round} (seed lineage): reader saw torn state: {e}"
        ));
    }
    committer.stop();
    report.ops_acked += acked.len() as u64;

    // Linearizability: commit-order replay reproduces the final snapshot.
    acked.sort_by_key(|(seq, _)| *seq);
    if acked.windows(2).any(|w| w[0].0 == w[1].0) {
        report
            .failures
            .push(format!("round {round}: duplicate commit_seq"));
        return;
    }
    let mut replayed = db.clone();
    for (_, op) in &acked {
        op.apply(&mut replayed);
    }
    let fp_final = fingerprint(&cell.load_slow());
    let fp_replay = fingerprint(&replayed);
    if fp_final != fp_replay {
        report.failures.push(format!(
            "round {round}: commit-order replay diverged from the published snapshot\n\
             base {fp_base}\nfinal {fp_final}\nreplay {fp_replay}"
        ));
    }

    // Durability parity: recovery (checkpoint + WAL) lands on the same
    // state the replay computed.
    if let Some(dir) = scratch {
        match recover_database(&RealVfs, dir) {
            Ok(rec) => {
                let fp_disk = fingerprint(&rec.database);
                if fp_disk != fp_final {
                    report.failures.push(format!(
                        "round {round}: recovered state diverged from memory\n\
                         disk {fp_disk}\nmem {fp_final}"
                    ));
                }
            }
            Err(e) => report
                .failures
                .push(format!("round {round}: recovery failed: {e}")),
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

// WriteCmd is not Clone in the server crate (nothing there needs it);
// rebuild the fields the replay op needs. The Arc'd document is shared,
// not reparsed. The wildcard arm exists because feature unification can
// surface the server's testing-only variants here; we never generate them.
#[allow(unreachable_patterns)]
fn clone_cmd(cmd: &WriteCmd) -> WriteCmd {
    match cmd {
        WriteCmd::Insert {
            collection,
            doc,
            xml,
        } => WriteCmd::Insert {
            collection: collection.clone(),
            doc: doc.clone(),
            xml: xml.clone(),
        },
        WriteCmd::CreateIndex {
            collection,
            data_type,
            pattern,
            skip_if_exists,
        } => WriteCmd::CreateIndex {
            collection: collection.clone(),
            data_type: *data_type,
            pattern: pattern.clone(),
            skip_if_exists: *skip_if_exists,
        },
        WriteCmd::DropIndex { collection, id } => WriteCmd::DropIndex {
            collection: collection.clone(),
            id: *id,
        },
        _ => unreachable!("testing-only commands are never generated"),
    }
}

/// Run the interleaved-writes oracle. `progress` is called after each
/// round with (rounds_done, failures_so_far).
pub fn run_interleaved(
    config: &InterleaveConfig,
    mut progress: impl FnMut(u64, usize),
) -> InterleaveReport {
    let scratch_root = std::env::temp_dir().join(format!(
        "xia_interleave_{}_{}",
        std::process::id(),
        config.seed
    ));
    let _ = std::fs::create_dir_all(&scratch_root);
    let mut report = InterleaveReport::default();
    let mut master = Rng::new(config.seed ^ 0x9e3779b97f4a7c15);
    for round in 0..config.rounds {
        let mut round_rng = Rng::new(master.next_u64());
        // Every other round runs with a WAL for the durability-parity leg.
        let scratch = (round % 2 == 0).then(|| scratch_root.join(format!("r{round}")));
        run_round(
            round,
            config,
            &mut round_rng,
            scratch.as_deref(),
            &mut report,
        );
        report.rounds_run += 1;
        progress(report.rounds_run, report.failures.len());
    }
    let _ = std::fs::remove_dir_all(&scratch_root);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned-seed smoke: a short interleaved run must be clean. The
    /// long pinned-seed sweep lives in scripts/check.sh
    /// (`xia fuzz --interleaved --seed 42`).
    #[test]
    fn short_interleaved_run_is_clean() {
        let report = run_interleaved(&InterleaveConfig::new(42, 3), |_, _| {});
        assert_eq!(report.rounds_run, 3);
        assert!(report.ok(), "{:#?}", report.failures);
        assert!(report.ops_acked > 0, "writers actually committed");
    }
}
