//! The five oracle invariants, checked end-to-end on one [`Case`].
//!
//! Every check runs under `catch_unwind`: a panic anywhere in the stack
//! (parser, containment, optimizer, executor, storage) is itself an
//! invariant violation, never a crashed fuzz run.

use crate::case::Case;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use xia_advisor::{
    generalize, generate_basic_candidates, Advisor, AnytimeBudget, EngineConfig, SearchStrategy,
    WhatIfEngine, Workload,
};
use xia_index::{contains, DataType, IndexDefinition, IndexId};
use xia_optimizer::{
    evaluate_query, execute, execute_navigational, optimize, Catalog, CostModel, Plan,
};
use xia_storage::{
    checkpoint_database, fingerprint, recover_database, Collection, Database, DocId, RealVfs,
};
use xia_xml::{Document, NodeId, NodeKind};
use xia_xpath::LinearPath;
use xia_xquery::NormalizedQuery;

/// One invariant violation. `detail` is for humans; `invariant` is the
/// stable name shrinking keys on.
#[derive(Debug, Clone)]
pub struct Violation {
    pub invariant: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Knobs for one check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Scratch directory for the durability round-trip; `None` skips
    /// invariant 4 (used by the shrinker, which re-checks hundreds of
    /// candidate cases and doesn't need disk traffic for the others).
    pub scratch: Option<PathBuf>,
    /// Also check `recommend` determinism (the slowest invariant; the
    /// fuzz loop samples it rather than paying it on every case).
    pub check_recommend: bool,
    /// Also check advise quality: on small candidate DAGs, the
    /// compressed + anytime pipeline must land within the certified
    /// compression bound of the exhaustive optimum (sampled like
    /// `check_recommend` — it enumerates every configuration subset).
    pub check_advise: bool,
    /// Also re-run every executed plan in navigational mode and demand
    /// identical rows *and* identical [`ExecStats`] — the batched engine
    /// and the tree-walking evaluator must never drift apart, in results
    /// or in the page accounting the cost model is calibrated against.
    pub check_exec_parity: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            scratch: None,
            check_recommend: true,
            check_advise: true,
            check_exec_parity: true,
        }
    }
}

/// Run every invariant against `case`; empty result = case passes.
pub fn check_case(case: &Case, opts: &CheckOptions) -> Vec<Violation> {
    let mut out = Vec::new();

    // --- Case setup: anything unparseable is a corpus/generator bug. ---
    let mut docs = Vec::new();
    for (i, xml) in case.docs.iter().enumerate() {
        match Document::parse(xml) {
            Ok(d) => docs.push(d),
            Err(e) => {
                out.push(violation("case-setup", format!("doc {i}: {e}")));
                return out;
            }
        }
    }
    let mut queries = Vec::new();
    for (i, text) in case.queries.iter().enumerate() {
        match xia_xquery::compile(text, "c") {
            Ok(q) => queries.push(q),
            Err(e) => {
                out.push(violation("case-setup", format!("query {i}: {e}")));
                return out;
            }
        }
    }
    let mut specs = Vec::new();
    for (i, ix) in case.indexes.iter().enumerate() {
        match LinearPath::parse(&ix.pattern) {
            Ok(p) => specs.push((
                p,
                if ix.double {
                    DataType::Double
                } else {
                    DataType::Varchar
                },
            )),
            Err(e) => {
                out.push(violation("case-setup", format!("index {i}: {e}")));
                return out;
            }
        }
    }
    let model = case.model();

    // --- Invariant 1 + 5: plan equivalence and estimate sanity. --------
    let reference = reference_results(case, &queries);
    check_plans(
        case,
        &queries,
        &specs,
        &model,
        &reference,
        opts.check_exec_parity,
        &mut out,
    );

    // --- Invariant 2: containment soundness. ---------------------------
    check_containment(&docs, &queries, &specs, &mut out);

    // --- Invariant 3: virtual/physical parity + determinism. -----------
    if model.is_finite() {
        check_parity(case, &queries, &specs, &model, &mut out);
        if opts.check_recommend {
            check_recommend_deterministic(case, &mut out);
        }
        if opts.check_advise {
            check_advise_quality(case, &mut out);
        }
    }

    // --- Invariant 4: durability round-trip. ---------------------------
    if let Some(dir) = &opts.scratch {
        check_durability(case, &specs, dir, &mut out);
    }

    out
}

fn violation(invariant: &'static str, detail: String) -> Violation {
    Violation { invariant, detail }
}

/// Build a fresh collection holding the case's documents and the given
/// subset of index specs (ids are 1-based spec positions).
fn build_collection(case: &Case, specs: &[(LinearPath, DataType)], which: &[usize]) -> Collection {
    let mut c = Collection::new("c");
    for xml in &case.docs {
        c.insert(Document::parse(xml).expect("validated above"));
    }
    for &i in which {
        let (pattern, ty) = &specs[i];
        c.create_index(IndexDefinition::new(
            IndexId(i as u32 + 1),
            pattern.clone(),
            *ty,
        ));
    }
    c
}

/// Reference semantics: evaluate every query navigationally on every
/// document — the result set every plan must reproduce exactly.
fn reference_results(case: &Case, queries: &[NormalizedQuery]) -> Vec<Vec<(DocId, NodeId)>> {
    let mut coll = Collection::new("ref");
    for xml in &case.docs {
        coll.insert(Document::parse(xml).expect("validated above"));
    }
    queries
        .iter()
        .map(|q| {
            let mut rows = Vec::new();
            for (id, doc) in coll.documents() {
                for node in q.run_on_document(doc) {
                    rows.push((id, node));
                }
            }
            rows.sort_unstable_by_key(|&(d, n)| (d, n.as_u32()));
            rows
        })
        .collect()
}

/// Describe a panic payload.
fn panic_text(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic".to_string()
    }
}

/// Invariants 1 and 5 over every index configuration: the empty config,
/// each index alone, and all indexes together — physical execution must
/// match the reference row-for-row, costs must be sane, and plan choice
/// must not depend on catalog enumeration order.
#[allow(clippy::too_many_arguments)]
fn check_plans(
    case: &Case,
    queries: &[NormalizedQuery],
    specs: &[(LinearPath, DataType)],
    model: &CostModel,
    reference: &[Vec<(DocId, NodeId)>],
    exec_parity: bool,
    out: &mut Vec<Violation>,
) {
    let mut configs: Vec<Vec<usize>> = vec![vec![]];
    for i in 0..specs.len() {
        configs.push(vec![i]);
    }
    if specs.len() > 1 {
        configs.push((0..specs.len()).collect());
    }

    // Plan correctness must not depend on the cost model, so each query
    // also runs under a scan-hostile "steer" model. On the tiny documents
    // the generator produces a realistic model almost always picks
    // DocScan; steering makes index-backed plans actually win and execute,
    // so plan equivalence exercises every access path, not just the scan.
    let models = [("default", *model), ("steer", steer_model(model))];

    for config in &configs {
        let coll = build_collection(case, specs, config);
        for (qi, query) in queries.iter().enumerate() {
            for (mname, m) in &models {
                let planned = catch_unwind(AssertUnwindSafe(|| {
                    let cat = Catalog::real_only(&coll);
                    optimize(&cat, m, query)
                }));
                let plan = match planned {
                    Ok(p) => p,
                    Err(e) => {
                        out.push(violation(
                            "plan-equivalence",
                            format!(
                                "optimize ({mname}) panicked on query {qi} ({}) with config {config:?}: {}",
                                case.queries[qi],
                                panic_text(e)
                            ),
                        ));
                        continue;
                    }
                };
                if m.is_finite() {
                    check_estimates(&plan, qi, config, out);
                }
                let executed = catch_unwind(AssertUnwindSafe(|| execute(&coll, query, &plan)));
                match executed {
                    Ok(Ok((rows, stats))) => {
                        if rows != reference[qi] {
                            out.push(violation(
                                "plan-equivalence",
                                format!(
                                    "query {qi} ({}) with config {config:?} ({mname}) via {} returned {} rows, reference {} rows",
                                    case.queries[qi],
                                    plan.render(&case.queries[qi]).lines().next().unwrap_or(""),
                                    rows.len(),
                                    reference[qi].len()
                                ),
                            ));
                        }
                        // Differential batched-vs-navigational mode: the
                        // same plan re-run through the tree-walking
                        // evaluator must produce the same rows and the
                        // same ExecStats (pages_read included), or the
                        // cost model's calibration target has forked.
                        if exec_parity {
                            let nav = catch_unwind(AssertUnwindSafe(|| {
                                execute_navigational(&coll, query, &plan)
                            }));
                            match nav {
                                Ok(Ok((nrows, nstats))) => {
                                    if nrows != rows {
                                        out.push(violation(
                                            "exec-parity",
                                            format!(
                                                "query {qi} ({}) with config {config:?} ({mname}): batched returned {} rows, navigational {} rows",
                                                case.queries[qi],
                                                rows.len(),
                                                nrows.len()
                                            ),
                                        ));
                                    } else if nstats != stats {
                                        out.push(violation(
                                            "exec-parity",
                                            format!(
                                                "query {qi} ({}) with config {config:?} ({mname}): ExecStats drift, batched {stats:?} vs navigational {nstats:?}",
                                                case.queries[qi]
                                            ),
                                        ));
                                    }
                                }
                                Ok(Err(e)) => out.push(violation(
                                    "exec-parity",
                                    format!(
                                        "query {qi} with config {config:?} ({mname}): navigational mode failed where batched succeeded: {e}"
                                    ),
                                )),
                                Err(e) => out.push(violation(
                                    "exec-parity",
                                    format!(
                                        "execute_navigational panicked on query {qi} with config {config:?} ({mname}): {}",
                                        panic_text(e)
                                    ),
                                )),
                            }
                        }
                    }
                    Ok(Err(e)) => out.push(violation(
                        "plan-equivalence",
                        format!(
                            "query {qi} with config {config:?} ({mname}) failed to execute: {e}"
                        ),
                    )),
                    Err(e) => out.push(violation(
                        "plan-equivalence",
                        format!(
                            "execute panicked on query {qi} with config {config:?} ({mname}): {}",
                            panic_text(e)
                        ),
                    )),
                }
            }
        }
    }

    // Enumeration-order robustness: creating the same indexes in reverse
    // order must yield bit-identical plan costs (a NaN-unsafe comparator
    // breaks exactly this).
    if specs.len() > 1 {
        let fwd: Vec<usize> = (0..specs.len()).collect();
        let rev: Vec<usize> = (0..specs.len()).rev().collect();
        let c_fwd = build_collection(case, specs, &fwd);
        let c_rev = build_collection(case, specs, &rev);
        for (qi, query) in queries.iter().enumerate() {
            for (mname, m) in &models {
                let run = |coll: &Collection| {
                    catch_unwind(AssertUnwindSafe(|| {
                        let cat = Catalog::real_only(coll);
                        let p = optimize(&cat, m, query);
                        (
                            p.cost.io.to_bits(),
                            p.cost.cpu.to_bits(),
                            access_shape(&p),
                            used_patterns(&p),
                        )
                    }))
                };
                match (run(&c_fwd), run(&c_rev)) {
                    (Ok(a), Ok(b)) => {
                        if a != b {
                            out.push(violation(
                                "plan-determinism",
                                format!(
                                    "query {qi} ({}) under {mname} model: catalog order changed the plan: {a:?} vs {b:?}",
                                    case.queries[qi]
                                ),
                            ));
                        }
                    }
                    (Err(e), _) | (_, Err(e)) => out.push(violation(
                        "plan-determinism",
                        format!("optimize panicked on query {qi}: {}", panic_text(e)),
                    )),
                }
            }
        }
    }
}

/// The case model with document scans made brutally expensive, keeping
/// any poisoned (NaN) knob intact. Correct plans are correct under every
/// model; this one forces index-backed plans to win on tiny collections.
fn steer_model(model: &CostModel) -> CostModel {
    let mut m = *model;
    m.page_io = 500.0;
    m.cpu_node = 1.0;
    m
}

/// The indexes a plan touches, as `pattern@atom` strings sorted so the
/// signature is independent of leg order. IndexIds are useless here —
/// they depend on creation order, which is exactly what the determinism
/// check varies — but patterns identify the index itself. NaN costs all
/// share one bit pattern, so without this a NaN-unsafe comparator that
/// picks a *different index* under reversed enumeration would go unseen.
fn used_patterns(p: &Plan) -> Vec<String> {
    use xia_optimizer::AccessPath::*;
    let legs: Vec<&xia_optimizer::IndexLeg> = match &p.access {
        DocScan => Vec::new(),
        IndexAccess { legs } | IndexOr { legs } => legs.iter().collect(),
        IndexOnly { leg } => vec![leg],
    };
    let mut out: Vec<String> = legs
        .iter()
        .map(|l| format!("{:?}@{}", l.pattern, l.atom))
        .collect();
    out.sort();
    out
}

fn access_shape(p: &Plan) -> &'static str {
    use xia_optimizer::AccessPath::*;
    match &p.access {
        DocScan => "scan",
        IndexAccess { .. } => "and",
        IndexOr { .. } => "or",
        IndexOnly { .. } => "index-only",
    }
}

/// Invariant 5: estimates on the chosen plan are finite and non-negative.
fn check_estimates(plan: &Plan, qi: usize, config: &[usize], out: &mut Vec<Violation>) {
    let checks = [
        ("cost.io", plan.cost.io),
        ("cost.cpu", plan.cost.cpu),
        ("est_results", plan.est_results),
        ("est_docs_fetched", plan.est_docs_fetched),
    ];
    for (name, v) in checks {
        if !v.is_finite() || v < 0.0 {
            out.push(violation(
                "estimate-sanity",
                format!("query {qi} config {config:?}: {name} = {v}"),
            ));
        }
    }
}

/// Root-to-node label path of every element/attribute node in `docs`,
/// the concrete material containment claims are tested against.
fn label_paths(docs: &[Document]) -> Vec<(Vec<String>, bool)> {
    let mut out = Vec::new();
    for doc in docs {
        let Some(root) = doc.root_element() else {
            continue;
        };
        for node in std::iter::once(root).chain(doc.descendants(root)) {
            let kind = doc.kind(node);
            if kind == NodeKind::Text {
                continue;
            }
            let mut labels = Vec::new();
            let mut cur = Some(node);
            while let Some(n) = cur {
                labels.push(doc.name(n).to_string());
                cur = doc.parent(n);
            }
            labels.reverse();
            out.push((labels, kind == NodeKind::Attribute));
        }
    }
    out
}

/// Invariant 2: `contains` never panics, is reflexive within the encoding
/// bound, agrees with the concrete matcher on every node of the corpus,
/// and matches exhaustive enumeration on the `//`-free sub-fragment
/// (where the language is finite-length and enumeration is complete).
fn check_containment(
    docs: &[Document],
    queries: &[NormalizedQuery],
    specs: &[(LinearPath, DataType)],
    out: &mut Vec<Violation>,
) {
    let mut patterns: Vec<LinearPath> = specs.iter().map(|(p, _)| p.clone()).collect();
    for q in queries {
        for atom in &q.atoms {
            patterns.push(atom.path.clone());
        }
    }
    patterns.truncate(10);
    let paths = label_paths(docs);

    for p in &patterns {
        for q in &patterns {
            let verdict = match catch_unwind(AssertUnwindSafe(|| contains(p, q))) {
                Ok(v) => v,
                Err(e) => {
                    out.push(violation(
                        "containment",
                        format!("contains({p}, {q}) panicked: {}", panic_text(e)),
                    ));
                    continue;
                }
            };
            if verdict {
                // Soundness on the generated corpus: every node Q selects
                // must be indexed by P.
                for (labels, is_attr) in &paths {
                    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                    if q.matches_label_path(&refs, *is_attr)
                        && !p.matches_label_path(&refs, *is_attr)
                    {
                        out.push(violation(
                            "containment",
                            format!(
                                "{p} claimed ⊇ {q}, but {q} matches {labels:?} and {p} does not"
                            ),
                        ));
                    }
                }
            }
            // On the //-free fragment the expected answer is computable
            // directly: languages are fixed-length, so containment is a
            // stepwise test-subsumption check.
            if let Some(expected) = child_only_containment(p, q) {
                if verdict != expected && p.len() <= xia_index::containment::MAX_STEPS {
                    out.push(violation(
                        "containment",
                        format!("contains({p}, {q}) = {verdict}, exhaustive says {expected}"),
                    ));
                }
            }
        }
        // Reflexivity within the encoding bound.
        if p.len() <= xia_index::containment::MAX_STEPS {
            let refl = catch_unwind(AssertUnwindSafe(|| contains(p, p)));
            if !matches!(refl, Ok(true)) {
                out.push(violation(
                    "containment",
                    format!("contains({p}, {p}) is not true"),
                ));
            }
        }
    }
}

/// Exact containment for pairs of `//`-free (child-axis-only) patterns:
/// the word language of such a pattern is exactly its step count, with a
/// wildcard matching any label. Returns `None` if either pattern has a
/// descendant axis.
fn child_only_containment(p: &LinearPath, q: &LinearPath) -> Option<bool> {
    use xia_xpath::{PathAxis, PathTest};
    let child_only = |l: &LinearPath| l.steps.iter().all(|s| s.axis == PathAxis::Child);
    if !child_only(p) || !child_only(q) {
        return None;
    }
    if p.targets_attribute() != q.targets_attribute() || p.len() != q.len() {
        return Some(false);
    }
    Some(p.steps.iter().zip(&q.steps).all(|(sp, sq)| {
        sp.is_attribute == sq.is_attribute
            && match (&sp.test, &sq.test) {
                (PathTest::Wildcard, _) => true,
                (PathTest::Label(a), PathTest::Label(b)) => a == b,
                (PathTest::Label(_), PathTest::Wildcard) => false,
            }
    }))
}

/// Invariant 3a: a virtual index must be priced exactly like the same
/// index materialized — the what-if engine's whole credibility.
fn check_parity(
    case: &Case,
    queries: &[NormalizedQuery],
    specs: &[(LinearPath, DataType)],
    model: &CostModel,
    out: &mut Vec<Violation>,
) {
    let base = build_collection(case, specs, &[]);
    for (i, (pattern, ty)) in specs.iter().enumerate() {
        let def = IndexDefinition::new(IndexId(i as u32 + 1), pattern.clone(), *ty);
        let physical = build_collection(case, specs, &[i]);
        for (qi, query) in queries.iter().enumerate() {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let v = evaluate_query(&base, model, std::slice::from_ref(&def), query);
                let p = optimize(&Catalog::real_only(&physical), model, query);
                (v, p)
            }));
            let (virt, phys) = match result {
                Ok(pair) => pair,
                Err(e) => {
                    out.push(violation(
                        "virtual-physical-parity",
                        format!(
                            "panicked pricing index {i} for query {qi}: {}",
                            panic_text(e)
                        ),
                    ));
                    continue;
                }
            };
            if virt.cost.total().to_bits() != phys.cost.total().to_bits() {
                out.push(violation(
                    "virtual-physical-parity",
                    format!(
                        "index {i} ({} {}), query {qi} ({}): virtual cost {} != physical cost {}",
                        case.indexes[i].pattern,
                        if case.indexes[i].double {
                            "DOUBLE"
                        } else {
                            "VARCHAR"
                        },
                        case.queries[qi],
                        virt.cost,
                        phys.cost
                    ),
                ));
            }
        }
    }
}

/// Invariant 3b: `recommend` is a pure function of its inputs.
fn check_recommend_deterministic(case: &Case, out: &mut Vec<Violation>) {
    if case.docs.is_empty() || case.queries.is_empty() {
        return;
    }
    let run = || -> Result<Vec<String>, String> {
        let mut coll = Collection::new("c");
        for xml in &case.docs {
            coll.insert(Document::parse(xml).expect("validated above"));
        }
        let texts: Vec<&str> = case.queries.iter().map(String::as_str).collect();
        let workload = Workload::from_queries(&texts, "c").map_err(|e| e.to_string())?;
        let advisor = Advisor::default();
        let rec = advisor.recommend(&coll, &workload, 64 << 10, SearchStrategy::GreedyHeuristic);
        Ok(rec
            .indexes
            .iter()
            .map(|d| format!("{} {}", d.pattern, d.data_type))
            .collect())
    };
    let a = catch_unwind(AssertUnwindSafe(run));
    let b = catch_unwind(AssertUnwindSafe(run));
    match (a, b) {
        (Ok(Ok(a)), Ok(Ok(b))) => {
            if a != b {
                out.push(violation(
                    "recommend-determinism",
                    format!("two identical runs recommended {a:?} vs {b:?}"),
                ));
            }
        }
        (Ok(Err(_)), Ok(Err(_))) => {} // workload rejected — consistent
        (Err(e), _) | (_, Err(e)) => out.push(violation(
            "recommend-determinism",
            format!("recommend panicked: {}", panic_text(e)),
        )),
        _ => out.push(violation(
            "recommend-determinism",
            "one run compiled the workload, the other did not".to_string(),
        )),
    }
}

/// Invariant 7: the scalable pipeline (workload compression + anytime
/// search, full refinement) must land within the certified compression
/// error bound of the *exhaustive* optimum, measured on the *full*
/// workload.
///
/// Template clustering preserves candidate generation (templates keep
/// atom paths, operators and literal types), so the compressed and full
/// workloads build the same candidate DAG; a configuration maps between
/// them one-to-one by (pattern, type). With residual weight `R` and
/// per-query cost bounded by the document-scan cost `S` (the optimizer
/// always considers DocScan), compressed and full costs of any one
/// configuration differ by at most `B = R·S`, so the compressed optimum
/// is within `2B` of the full optimum. Only checked when the full DAG
/// has ≤ 12 nodes — the reference side enumerates all 2^n subsets.
fn check_advise_quality(case: &Case, out: &mut Vec<Violation>) {
    if case.docs.is_empty() || case.queries.is_empty() {
        return;
    }
    let budget: u64 = 64 << 10;
    let run = || -> Result<Option<String>, String> {
        let mut coll = Collection::new("c");
        for xml in &case.docs {
            coll.insert(Document::parse(xml).expect("validated above"));
        }
        let texts: Vec<&str> = case.queries.iter().map(String::as_str).collect();
        let workload = Workload::from_queries(&texts, "c").map_err(|e| e.to_string())?;
        let advisor = Advisor::default();

        // Reference: exhaustive sweep over the full workload's DAG.
        let basic = generate_basic_candidates(&coll, &workload);
        let dag = generalize(&coll, &basic, &advisor.config.generalization);
        let n = dag.nodes.len();
        if n == 0 || n > 12 {
            return Ok(None);
        }
        let mut ev = WhatIfEngine::from_workload(
            &coll,
            &advisor.config.cost_model,
            &workload,
            &dag,
            EngineConfig::default(),
        );
        let base = ev.cost(&[]);
        let mut best = base;
        for mask in 0u32..(1u32 << n) {
            let chosen: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
            let size: u64 = chosen
                .iter()
                .map(|&i| dag.nodes[i].candidate.size_bytes)
                .sum();
            if size > budget {
                continue;
            }
            best = best.min(ev.cost(&chosen));
        }

        // Candidate: compression + anytime search, unbounded budget and
        // exhaustive refinement (so search error is zero and only the
        // compression bound separates it from the optimum).
        let rec = advisor.recommend_compressed(
            &coll,
            &workload,
            budget,
            &AnytimeBudget::unbounded(),
            12,
            &[],
        );
        let chosen: Vec<usize> = rec
            .indexes
            .iter()
            .filter_map(|d| {
                dag.nodes.iter().position(|node| {
                    node.candidate.pattern == d.pattern && node.candidate.data_type == d.data_type
                })
            })
            .collect();
        if chosen.len() != rec.indexes.len() {
            return Ok(Some(format!(
                "compressed pipeline recommended {} index(es) absent from the full-workload DAG",
                rec.indexes.len() - chosen.len()
            )));
        }
        let full_cost = ev.cost(&chosen);
        let slack = 2.0 * rec.error_bound + 1e-6 * base.max(1.0);
        if full_cost > best + slack {
            return Ok(Some(format!(
                "compressed+anytime configuration costs {full_cost:.6} on the full workload; \
                 exhaustive best is {best:.6}, allowed slack {slack:.6} \
                 (error bound {:.6}, {} templates for {} queries)",
                rec.error_bound, rec.templates, rec.raw_queries
            )));
        }
        Ok(None)
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok(None)) | Ok(Err(_)) => {} // held, or workload rejected
        Ok(Ok(Some(detail))) => out.push(violation("advise-quality", detail)),
        Err(e) => out.push(violation(
            "advise-quality",
            format!("advise pipeline panicked: {}", panic_text(e)),
        )),
    }
}

/// Invariant 4: checkpoint + recover reproduces the database fingerprint.
fn check_durability(
    case: &Case,
    specs: &[(LinearPath, DataType)],
    scratch: &std::path::Path,
    out: &mut Vec<Violation>,
) {
    let all: Vec<usize> = (0..specs.len()).collect();
    let coll = build_collection(case, specs, &all);
    let mut db = Database::new();
    db.add_collection(coll);
    let before = fingerprint(&db);

    // A per-case subdirectory so generations never bleed across cases.
    let dir = scratch.join(format!("case_{:016x}", case_key(case)));
    let _ = std::fs::remove_dir_all(&dir);
    let vfs = RealVfs;
    let result = catch_unwind(AssertUnwindSafe(|| {
        checkpoint_database(&vfs, &db, &dir)?;
        recover_database(&vfs, &dir)
    }));
    match result {
        Ok(Ok(rec)) => {
            let after = fingerprint(&rec.database);
            if after != before {
                out.push(violation(
                    "durability",
                    format!("fingerprint changed across checkpoint+recover:\n  before {before}\n  after  {after}"),
                ));
            }
            if let Err(e) = rec.database.verify() {
                out.push(violation(
                    "durability",
                    format!("recovered db fails verify: {e}"),
                ));
            }
        }
        Ok(Err(e)) => out.push(violation("durability", format!("round-trip failed: {e}"))),
        Err(e) => out.push(violation(
            "durability",
            format!("round-trip panicked: {}", panic_text(e)),
        )),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stable content hash of a case (FNV-1a), used for scratch paths.
fn case_key(case: &Case) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x1_0000_01b3);
    };
    for d in &case.docs {
        eat(d);
    }
    for q in &case.queries {
        eat(q);
    }
    for ix in &case.indexes {
        eat(&ix.pattern);
        eat(if ix.double { "D" } else { "V" });
    }
    if let Some(p) = case.poison {
        eat(p.name());
    }
    h
}

/// Deduplicate violations by invariant (keeps the first of each kind) —
/// a single root cause often fires the same invariant many times.
pub fn dedupe(violations: Vec<Violation>) -> Vec<Violation> {
    let mut seen = BTreeSet::new();
    violations
        .into_iter()
        .filter(|v| seen.insert(v.invariant))
        .collect()
}
