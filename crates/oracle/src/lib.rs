//! # xia-oracle
//!
//! A seeded differential-testing harness for the whole advisor stack.
//! The advisor's value proposition is tight optimizer coupling: if the
//! optimizer picks a wrong or arbitrary plan, every what-if cost and
//! therefore every recommendation is suspect. This crate generates
//! random documents, linear XPath queries, and index configurations,
//! then checks five end-to-end invariants:
//!
//! 1. **plan equivalence** — every optimizer plan (DocScan, index scan,
//!    index-ANDing/ORing, index-only; physical and virtual) returns the
//!    same result set as naive navigational evaluation, under every
//!    generated index configuration;
//! 2. **containment soundness** — `contains(P, Q)` never panics, agrees
//!    with the concrete label-path matcher on every node of the
//!    generated corpus, and matches exhaustive checking on the
//!    `//`-free sub-fragment;
//! 3. **virtual/physical parity** — a virtual index is priced exactly
//!    like the same index materialized, and `recommend` is
//!    deterministic across runs;
//! 4. **durability round-trip** — checkpoint + recover reproduces the
//!    database fingerprint;
//! 5. **estimate sanity** — estimated rows and costs are finite and
//!    non-negative (for finite cost models; deliberately NaN-poisoned
//!    models must still plan deterministically).
//!
//! A sixth, differential invariant rides along with plan equivalence:
//! **exec parity** — every executed plan re-runs through the
//! navigational (tree-walking) evaluator and must match the batched
//! engine's rows and `ExecStats` exactly, so the vectorized path can
//! never silently fork from the semantics or the page accounting.
//!
//! Failures auto-shrink and serialize to a textual `.case` format that
//! is committed under `crates/oracle/corpus/` and replayed by an
//! ordinary `cargo test`, so every bug the oracle ever finds stays
//! fixed. Everything is seeded (xorshift64*) — no clocks, no global
//! randomness — so `xia fuzz --seed N` reproduces runs bit-for-bit.
//!
//! A second mode ([`interleave`], `xia fuzz --interleaved`) targets the
//! server's concurrency layer instead: seeded writers race through the
//! group-commit committer while the oracle checks linearizability
//! (commit-order replay reproduces the final snapshot),
//! prefix-consistent snapshot reads, and durability parity.
//!
//! A third mode ([`netchaos`], `xia fuzz --net-chaos`) targets the
//! network layer: concurrent seeded clients drive a real daemon through
//! fault-injecting transports (garbage bytes, slowloris, mid-frame
//! disconnects) under squeezed admission limits, checking that every
//! connection ends in a well-formed response, a clean BUSY/TIMEOUT, or
//! a closed socket — never a wedged worker or a corrupted stream — and
//! that the overload accounting reconciles exactly.
//!
//! A fourth mode ([`tenants`], `xia fuzz --tenants`) targets the
//! multi-tenant namespace: seeded clients interleave tenant-scoped
//! writes and reads against a live daemon while the oracle checks
//! cross-tenant isolation (per-tenant marker counts reconcile exactly,
//! foreign markers count zero), default-namespace compatibility, and
//! restart parity over each tenant's durable subdirectory.

pub mod case;
pub mod check;
pub mod gen;
pub mod interleave;
pub mod netchaos;
pub mod rng;
pub mod shrink;
pub mod tenants;

pub use case::{Case, IndexSpec, Poison};
pub use check::{check_case, dedupe, CheckOptions, Violation};
pub use gen::gen_case;
pub use interleave::{run_interleaved, InterleaveConfig, InterleaveReport};
pub use netchaos::{run_net_chaos, NetChaosConfig, NetChaosReport};
pub use rng::Rng;
pub use shrink::shrink;
pub use tenants::{run_tenants, TenantsConfig, TenantsReport};

use std::path::PathBuf;

/// Configuration for one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    pub seed: u64,
    /// Number of cases to generate and check.
    pub budget: u64,
    /// Scratch directory for durability round-trips (created, then
    /// removed). `None` derives one under the system temp dir.
    pub scratch: Option<PathBuf>,
    /// Check `recommend` determinism every n-th case (it is by far the
    /// most expensive invariant). 0 disables it.
    pub recommend_every: u64,
    /// Stop after this many distinct failures (each is shrunk, which is
    /// expensive); 0 means keep going through the whole budget.
    pub max_failures: usize,
}

impl FuzzConfig {
    pub fn new(seed: u64, budget: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            budget,
            scratch: None,
            recommend_every: 4,
            max_failures: 5,
        }
    }
}

/// One shrunk failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the generated case that first failed.
    pub case_number: u64,
    /// The invariant that fired.
    pub invariant: &'static str,
    /// Human-readable details from the *original* (pre-shrink) failure.
    pub detail: String,
    /// The shrunk reproducer.
    pub case: Case,
}

/// Result of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    pub cases_run: u64,
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the oracle: generate `budget` cases from `seed`, check every
/// invariant, shrink any failure. `progress` is called after each case
/// with (cases_done, failures_so_far).
pub fn run_fuzz(config: &FuzzConfig, mut progress: impl FnMut(u64, usize)) -> FuzzReport {
    let scratch = config.scratch.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("xia_oracle_{}_{}", std::process::id(), config.seed))
    });
    let _ = std::fs::create_dir_all(&scratch);

    let mut report = FuzzReport::default();
    // One RNG stream per case, split off a master stream: shrinking or
    // skipping a case never perturbs later ones.
    let mut master = Rng::new(config.seed);
    for n in 0..config.budget {
        let mut case_rng = Rng::new(master.next_u64());
        let case = gen_case(&mut case_rng);
        let sampled = config.recommend_every > 0 && n % config.recommend_every == 0;
        let opts = CheckOptions {
            scratch: Some(scratch.clone()),
            check_recommend: sampled,
            check_advise: sampled,
            // Cheap relative to recommend/advise; check on every case so
            // the pinned sweep covers batched-vs-navigational everywhere.
            check_exec_parity: true,
        };
        let violations = check_case(&case, &opts);
        report.cases_run += 1;
        if let Some(first) = dedupe(violations).into_iter().next() {
            // Shrink without disk traffic unless the bug is durability.
            let shrink_opts = CheckOptions {
                scratch: (first.invariant == "durability").then(|| scratch.clone()),
                check_recommend: first.invariant == "recommend-determinism",
                check_advise: first.invariant == "advise-quality",
                check_exec_parity: first.invariant == "exec-parity",
            };
            let small = shrink(&case, &shrink_opts, first.invariant);
            report.failures.push(Failure {
                case_number: n,
                invariant: first.invariant,
                detail: first.detail,
                case: small,
            });
            if config.max_failures > 0 && report.failures.len() >= config.max_failures {
                progress(report.cases_run, report.failures.len());
                break;
            }
        }
        progress(report.cases_run, report.failures.len());
    }
    let _ = std::fs::remove_dir_all(&scratch);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The oracle's own smoke test: a short run on a fixed seed must be
    /// clean. (The long pinned-seed run lives in scripts/check.sh and the
    /// acceptance command `xia fuzz --seed 42 --budget 5000`.)
    #[test]
    fn short_run_is_clean() {
        let report = run_fuzz(&FuzzConfig::new(42, 40), |_, _| {});
        assert_eq!(report.cases_run, 40);
        if let Some(f) = report.failures.first() {
            panic!(
                "case {} violated {}: {}\nshrunk:\n{}",
                f.case_number,
                f.invariant,
                f.detail,
                f.case.to_text()
            );
        }
    }

    /// A hand-built case that exercises all five invariants must pass.
    #[test]
    fn handbuilt_case_passes() {
        let case = Case::from_text(
            "index DOUBLE //item/price\nindex VARCHAR //*\nquery //item[price = 3]/b\nquery //item/price\ndoc <a><item><price>3</price><b>x</b></item></a>\ndoc <a><item><price>7</price><b>y</b></item></a>\n",
        )
        .unwrap();
        let scratch = std::env::temp_dir().join(format!("xia_oracle_unit_{}", std::process::id()));
        let opts = CheckOptions {
            scratch: Some(scratch.clone()),
            check_recommend: true,
            check_advise: true,
            check_exec_parity: true,
        };
        let violations = check_case(&case, &opts);
        let _ = std::fs::remove_dir_all(&scratch);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
