//! A self-contained oracle test case and its textual `.case` format.
//!
//! Cases are plain text so shrunk failures can be committed to
//! `crates/oracle/corpus/` and diffed in review:
//!
//! ```text
//! # xia-oracle case v1
//! index DOUBLE //item/price
//! query //item[price = 3]/name
//! doc <site><item><price>3</price><name>x</name></item></site>
//! poison cpu_entry
//! ```
//!
//! Order of lines does not matter; `#` starts a comment. Documents must
//! be single-line XML (the generator always serializes compactly). The
//! optional `poison <knob>` line replaces one cost-model constant with
//! NaN, modelling a broken statistics path — plan selection must stay
//! deterministic and execution correct even then.

use xia_optimizer::CostModel;

/// One index of a generated configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Linear XPath pattern text (`//item/price`, `//*`, …).
    pub pattern: String,
    /// `VARCHAR` or `DOUBLE`.
    pub double: bool,
}

/// A cost-model constant the case poisons with NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poison {
    CpuEntry,
    RandomIo,
    Fetch,
    /// The sharpest knob: `cpu_recheck` is charged only on legs that need
    /// a structural re-check (a general pattern like `//*` covering a
    /// narrower query path), so poisoning it yields *mixed* finite/NaN
    /// leg scores for the same atom — exactly the situation where a
    /// NaN-unsafe comparator picks whichever leg it happened to see
    /// first and plan choice becomes enumeration-order dependent.
    CpuRecheck,
}

impl Poison {
    pub const ALL: [Poison; 4] = [
        Poison::CpuEntry,
        Poison::RandomIo,
        Poison::Fetch,
        Poison::CpuRecheck,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Poison::CpuEntry => "cpu_entry",
            Poison::RandomIo => "random_io",
            Poison::Fetch => "fetch",
            Poison::CpuRecheck => "cpu_recheck",
        }
    }

    fn parse(s: &str) -> Option<Poison> {
        Poison::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The default cost model with this knob replaced by NaN.
    pub fn apply(self) -> CostModel {
        let mut m = CostModel::default();
        match self {
            Poison::CpuEntry => m.cpu_entry = f64::NAN,
            Poison::RandomIo => m.random_io = f64::NAN,
            Poison::Fetch => m.fetch = f64::NAN,
            Poison::CpuRecheck => m.cpu_recheck = f64::NAN,
        }
        m
    }
}

/// One complete oracle input: documents, queries, an index configuration,
/// and optionally a poisoned cost model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Case {
    pub docs: Vec<String>,
    pub queries: Vec<String>,
    pub indexes: Vec<IndexSpec>,
    pub poison: Option<Poison>,
}

impl Case {
    /// The cost model this case runs under.
    pub fn model(&self) -> CostModel {
        self.poison.map_or_else(CostModel::default, Poison::apply)
    }

    /// Serialize to the `.case` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# xia-oracle case v1\n");
        for ix in &self.indexes {
            out.push_str("index ");
            out.push_str(if ix.double { "DOUBLE" } else { "VARCHAR" });
            out.push(' ');
            out.push_str(&ix.pattern);
            out.push('\n');
        }
        for q in &self.queries {
            out.push_str("query ");
            out.push_str(q);
            out.push('\n');
        }
        for d in &self.docs {
            out.push_str("doc ");
            out.push_str(d);
            out.push('\n');
        }
        if let Some(p) = self.poison {
            out.push_str("poison ");
            out.push_str(p.name());
            out.push('\n');
        }
        out
    }

    /// Parse the `.case` text format.
    pub fn from_text(text: &str) -> Result<Case, String> {
        let mut case = Case::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (word, rest) = match line.find(char::is_whitespace) {
                Some(i) => (&line[..i], line[i..].trim()),
                None => (line, ""),
            };
            match word {
                "index" => {
                    let (ty, pattern) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| format!("line {}: index needs TYPE PATTERN", lineno + 1))?;
                    let double = match ty {
                        "DOUBLE" => true,
                        "VARCHAR" => false,
                        other => return Err(format!("line {}: bad type {other}", lineno + 1)),
                    };
                    case.indexes.push(IndexSpec {
                        pattern: pattern.trim().to_string(),
                        double,
                    });
                }
                "query" => case.queries.push(rest.to_string()),
                "doc" => case.docs.push(rest.to_string()),
                "poison" => {
                    case.poison = Some(
                        Poison::parse(rest)
                            .ok_or_else(|| format!("line {}: bad poison {rest}", lineno + 1))?,
                    );
                }
                other => return Err(format!("line {}: unknown directive {other}", lineno + 1)),
            }
        }
        Ok(case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Case {
        Case {
            docs: vec!["<a><b>1</b></a>".into(), "<a><c>x</c></a>".into()],
            queries: vec!["//a/b".into(), "//a[b = 1]".into()],
            indexes: vec![
                IndexSpec {
                    pattern: "//b".into(),
                    double: true,
                },
                IndexSpec {
                    pattern: "//*".into(),
                    double: false,
                },
            ],
            poison: Some(Poison::Fetch),
        }
    }

    #[test]
    fn roundtrips_through_text() {
        let c = sample();
        let parsed = Case::from_text(&c.to_text()).unwrap();
        assert_eq!(c, parsed);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let c = Case::from_text("# hi\n\ndoc <a/>\n  # more\nquery //a\n").unwrap();
        assert_eq!(c.docs, vec!["<a/>"]);
        assert_eq!(c.queries, vec!["//a"]);
        assert!(c.poison.is_none());
    }

    #[test]
    fn bad_directives_are_rejected() {
        assert!(Case::from_text("frob x").is_err());
        assert!(Case::from_text("index BLOB //a").is_err());
        assert!(Case::from_text("poison nonsense").is_err());
        assert!(Case::from_text("index DOUBLE").is_err());
    }
}
