//! Random case generation: documents, linear XPath queries, and index
//! configurations over a deliberately tiny label alphabet so patterns,
//! queries, and data collide constantly.

use crate::case::{Case, IndexSpec, Poison};
use crate::rng::Rng;
use xia_xml::{serialize, DocumentBuilder};

/// Small alphabet: collisions between index patterns, query paths, and
/// document structure are the whole point.
const LABELS: [&str; 6] = ["a", "b", "c", "d", "item", "price"];
/// Attribute names, likewise tiny.
const ATTRS: [&str; 2] = ["id", "k"];
/// String leaf values.
const WORDS: [&str; 4] = ["x", "yy", "z9", ""];

/// Generate one whole case from the per-case RNG stream.
pub fn gen_case(rng: &mut Rng) -> Case {
    let docs = (0..rng.range(0, 4)).map(|_| gen_doc(rng)).collect();
    let queries = (0..rng.range(1, 3)).map(|_| gen_query(rng)).collect();
    let indexes = (0..rng.range(0, 3)).map(|_| gen_index(rng)).collect();
    // Rarely, poison one cost-model knob with NaN: estimates go bad but
    // plan selection must stay deterministic and execution correct.
    let poison = rng.chance(1, 10).then(|| rng.pick(&Poison::ALL));
    Case {
        docs,
        queries,
        indexes,
        poison,
    }
}

/// A random document: bounded depth/fanout, mixed numeric and string
/// leaves, occasional attributes. Serialized compactly (single line).
fn gen_doc(rng: &mut Rng) -> String {
    let mut b = DocumentBuilder::new();
    let root = rng.pick(&LABELS);
    b.open(root);
    if rng.chance(1, 3) {
        let n = rng.below(10);
        b.attr(rng.pick(&ATTRS), &format!("v{n}"));
    }
    gen_children(rng, &mut b, 0);
    b.close();
    let doc = b.finish().expect("generator closes what it opens");
    serialize(&doc)
}

fn gen_children(rng: &mut Rng, b: &mut DocumentBuilder, depth: usize) {
    let fanout = if depth >= 3 { 0 } else { rng.range(0, 3) };
    for _ in 0..fanout {
        let label = rng.pick(&LABELS);
        if rng.chance(1, 2) {
            // Leaf with a value: numeric more often than not so DOUBLE
            // indexes have something to chew on.
            let value = if rng.chance(2, 3) {
                format!("{}", rng.below(20))
            } else {
                rng.pick(&WORDS).to_string()
            };
            b.leaf(label, &value);
        } else {
            b.open(label);
            if rng.chance(1, 4) {
                let n = rng.below(10);
                b.attr(rng.pick(&ATTRS), &format!("v{n}"));
            }
            gen_children(rng, b, depth + 1);
            b.close();
        }
    }
}

/// A random linear path as text: `/` and `//` axes, labels and `*`,
/// optional attribute tail. `deep` forces 64+ steps to exercise the
/// containment length boundary end-to-end.
pub fn gen_path(rng: &mut Rng, deep: bool) -> String {
    let steps = if deep {
        rng.range(64, 70)
    } else {
        rng.range(1, 4)
    };
    let mut out = String::new();
    for i in 0..steps {
        out.push_str(if rng.chance(1, 3) { "//" } else { "/" });
        let last = i + 1 == steps;
        if last && rng.chance(1, 8) {
            out.push('@');
            out.push_str(rng.pick(&ATTRS));
        } else if rng.chance(1, 5) {
            out.push('*');
        } else {
            out.push_str(rng.pick(&LABELS));
        }
    }
    out
}

/// A random query: a linear path, optionally with one or two value
/// predicates (possibly `and`/`or`-combined). Always compiles.
pub fn gen_query(rng: &mut Rng) -> String {
    // 1 in 12 queries is a deep path: the containment boundary must be
    // exercised through the whole optimizer stack, not just unit tests.
    let deep = rng.chance(1, 12);
    let mut path = gen_path(rng, deep);
    if path.ends_with('*') || path.contains('@') {
        // Keep predicates off wildcard/attribute tails; the surface stays
        // simple enough to always compile.
        return path;
    }
    if rng.chance(1, 2) {
        let pred = gen_comparison(rng);
        let pred = if rng.chance(1, 4) {
            let op = if rng.chance(1, 2) { "and" } else { "or" };
            format!("{pred} {op} {}", gen_comparison(rng))
        } else {
            pred
        };
        path.push('[');
        path.push_str(&pred);
        path.push(']');
        if rng.chance(1, 2) {
            path.push('/');
            path.push_str(rng.pick(&LABELS));
        }
    }
    path
}

fn gen_comparison(rng: &mut Rng) -> String {
    let lhs = rng.pick(&LABELS);
    let op = rng.pick(&["=", "!=", "<", "<=", ">", ">="]);
    if rng.chance(2, 3) {
        format!("{lhs} {op} {}", rng.below(20))
    } else {
        format!("{lhs} {op} \"{}\"", rng.pick(&WORDS))
    }
}

fn gen_index(rng: &mut Rng) -> IndexSpec {
    let pattern = match rng.below(8) {
        // The universal index: matches everything, maximal plan variety.
        0 => "//*".to_string(),
        // 1 in 16 indexes has a 64+-step pattern: containment must give
        // the conservative answer, never panic.
        1 if rng.chance(1, 2) => gen_path(rng, true),
        _ => gen_path(rng, false),
    };
    IndexSpec {
        pattern,
        double: rng.chance(1, 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_well_formed() {
        let mut rng = Rng::new(7);
        for _ in 0..200 {
            let case = gen_case(&mut rng);
            for d in &case.docs {
                assert!(!d.contains('\n'), "docs must serialize to one line: {d:?}");
                xia_xml::Document::parse(d).expect("generated docs parse");
            }
            for q in &case.queries {
                xia_xquery::compile(q, "c").expect("generated queries compile");
            }
            for ix in &case.indexes {
                xia_xpath::LinearPath::parse(&ix.pattern).expect("patterns parse");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        for _ in 0..50 {
            assert_eq!(gen_case(&mut a), gen_case(&mut b));
        }
    }

    #[test]
    fn deep_paths_appear() {
        let mut rng = Rng::new(3);
        let mut deep_queries = 0;
        let mut deep_indexes = 0;
        for _ in 0..400 {
            let case = gen_case(&mut rng);
            deep_queries += case
                .queries
                .iter()
                .filter(|q| q.matches('/').count() >= 64)
                .count();
            deep_indexes += case
                .indexes
                .iter()
                .filter(|ix| ix.pattern.matches('/').count() >= 64)
                .count();
        }
        assert!(deep_queries > 0, "deep query paths must be generated");
        assert!(deep_indexes > 0, "deep index patterns must be generated");
    }
}
