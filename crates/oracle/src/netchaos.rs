//! Seeded network-chaos oracle: drive a real daemon through the
//! fault-injecting [`ChaosFactory`] transport and pin the overload
//! contract (`xia fuzz --net-chaos`).
//!
//! Concurrent seeded clients hammer a small daemon whose every accepted
//! socket is wrapped in a [`FaultTransport`] profile — garbage prefixes,
//! slowloris byte-drip, mid-frame disconnects, tiny chunks, write-path
//! disconnects, plus a clean control group — while admission control is
//! deliberately squeezed (small `max_connections`/`shed_queue`) so BUSY
//! rejections and tiered shedding fire during the sweep.
//!
//! The invariant, checked from both sides of the wire:
//!
//! 1. **per-connection stream integrity** — every *complete* response
//!    line the client reads parses as JSON with a boolean `ok`; `busy`
//!    responses carry a positive `retry_after_ms`; and every `ok: true`
//!    response has the shape of the request it answers, in order — a
//!    response surfacing on the wrong connection or interleaving with
//!    another client's bytes fails the pairing. Truncated tails and
//!    early EOF are legal (that is what faulted connections look like);
//!    a read blocking past the wedge timeout is not.
//! 2. **no wedge, no leak** — after the sweep the daemon still answers
//!    PING on a clean connection, its gauges (`live`, `queued`,
//!    `in_flight`) drain to zero, and `Server::stop` joins every worker
//!    within a watchdog timeout.
//! 3. **metrics reconciliation** — the connection accounting partitions
//!    exactly: `conns_accepted == conns_rejected + conns_served +
//!    conns_faulted`.
//!
//! As with [`crate::interleave`], thread scheduling is the OS's; what is
//! seeded is the per-connection fault plan and request mix, and the
//! invariants hold for every interleaving.

use crate::rng::Rng;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use xia_server::{AdmissionConfig, ChaosFactory, ChaosProfile, Client, Server, ServerConfig};
use xia_storage::Database;
use xia_xml::Document;

/// Configuration for one net-chaos sweep.
#[derive(Debug, Clone)]
pub struct NetChaosConfig {
    pub seed: u64,
    /// Total connections to drive through the fault profiles.
    pub connections: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Daemon worker threads (kept small so the queue actually fills).
    pub workers: usize,
    /// Admission limits, squeezed so BUSY paths fire under the sweep.
    pub max_connections: usize,
    pub shed_queue: usize,
    /// Client-side read bound; a response blocking past this is a wedge.
    pub wedge_timeout: Duration,
}

impl NetChaosConfig {
    pub fn new(seed: u64, connections: u64) -> NetChaosConfig {
        NetChaosConfig {
            seed,
            connections,
            clients: 8,
            workers: 2,
            max_connections: 6,
            shed_queue: 3,
            wedge_timeout: Duration::from_secs(10),
        }
    }
}

/// Result of a net-chaos sweep.
#[derive(Debug, Clone, Default)]
pub struct NetChaosReport {
    pub connections_driven: u64,
    pub requests_sent: u64,
    /// Complete, well-formed response lines observed by clients.
    pub responses_seen: u64,
    /// `busy: true` responses (connect rejections + shed requests).
    pub busy_seen: u64,
    /// Connections that ended early (EOF/reset/truncated tail) — the
    /// expected signature of injected faults, not a failure.
    pub faulted_seen: u64,
    /// Fault profiles exercised (the chaos factory's full rotation).
    pub profiles: usize,
    /// Server-side accounting after shutdown, for the reconciliation.
    pub accepted: u64,
    pub served: u64,
    pub rejected: u64,
    pub faulted: u64,
    pub failures: Vec<String>,
}

impl NetChaosReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// What one seeded client sent on a connection, for response pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sent {
    Ping,
    Query,
    Stats,
    Insert,
    Advise,
    /// A deliberately malformed line; its `bad request` error response
    /// is skipped by the pairing, like garbage-prefix frames.
    Garbage,
}

impl Sent {
    fn line(self, rng: &mut Rng) -> String {
        match self {
            Sent::Ping => r#"{"cmd": "ping"}"#.to_string(),
            Sent::Query => {
                r#"{"cmd": "query", "q": "//item/price", "collection": "c0"}"#.to_string()
            }
            Sent::Stats => r#"{"cmd": "stats"}"#.to_string(),
            Sent::Insert => {
                let n = rng.below(1000);
                format!(
                    r#"{{"cmd": "insert", "collection": "c0", "xml": "<r><item id=\"x{n}\"><price>{n}</price></item></r>"}}"#
                )
            }
            Sent::Advise => r#"{"cmd": "advise"}"#.to_string(),
            Sent::Garbage => match rng.below(3) {
                0 => "this is not json".to_string(),
                1 => r#"{"cmd": "query", "q":"#.to_string(), // truncated
                _ => "<xml>wrong protocol</xml>".to_string(),
            },
        }
    }

    /// The field an `ok: true` response to this request must carry.
    fn shape_field(self) -> &'static str {
        match self {
            Sent::Ping => "pong",
            Sent::Query => "results",
            Sent::Stats => "uptime_secs",
            Sent::Insert => "doc",
            Sent::Advise => "report",
            Sent::Garbage => unreachable!("garbage never gets ok:true"),
        }
    }
}

fn gen_requests(rng: &mut Rng) -> Vec<Sent> {
    let k = 1 + rng.below(3);
    (0..k)
        .map(|_| match rng.below(10) {
            0..=2 => Sent::Ping,
            3..=5 => Sent::Query,
            6 => Sent::Stats,
            7 => Sent::Insert,
            8 => Sent::Advise,
            _ => Sent::Garbage,
        })
        .collect()
}

/// Outcome tallies from one client thread.
#[derive(Default)]
struct ClientTally {
    connections: u64,
    requests: u64,
    responses: u64,
    busy: u64,
    faulted: u64,
    failures: Vec<String>,
}

/// Drive one connection: pipeline the seeded requests, close the write
/// side, read every response line, then validate the stream.
fn drive_connection(
    addr: std::net::SocketAddr,
    rng: &mut Rng,
    wedge_timeout: Duration,
    tally: &mut ClientTally,
) {
    let label = |sent: &[Sent]| format!("{sent:?}");
    let Ok(stream) = TcpStream::connect(addr) else {
        // Kernel-level connect failure: the daemon never saw this
        // connection, so it does not participate in reconciliation.
        return;
    };
    tally.connections += 1;
    let _ = stream.set_read_timeout(Some(wedge_timeout));
    let mut reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(_) => return,
    };
    let mut writer = stream;

    let sent = gen_requests(rng);
    let mut written: Vec<Sent> = Vec::new();
    for s in &sent {
        let line = s.line(rng);
        if writer.write_all(line.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            break; // connection already dead: a faulted end, not a bug
        }
        written.push(*s);
        tally.requests += 1;
    }
    let _ = writer.flush();
    let _ = writer.shutdown(Shutdown::Write); // EOF signals "no more frames"

    // Read everything the server sends until EOF / error / wedge.
    let mut complete: Vec<String> = Vec::new();
    let mut truncated = false;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // clean EOF
            Ok(_) if line.ends_with('\n') => complete.push(line.trim().to_string()),
            Ok(_) => {
                // Partial line then EOF: the server died mid-response.
                truncated = true;
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                tally.failures.push(format!(
                    "WEDGE: no response or EOF within {:?} (sent {})",
                    wedge_timeout,
                    label(&written)
                ));
                return;
            }
            Err(_) => {
                truncated = true; // reset mid-stream: a faulted end
                break;
            }
        }
    }

    // Pair the response stream against what we sent. Garbage frames
    // (ours or the fault plan's prefix) answer with `bad request` errors
    // that the pairing skips; everything else pairs in order.
    let expected: Vec<Sent> = written
        .iter()
        .copied()
        .filter(|s| *s != Sent::Garbage)
        .collect();
    let mut idx = 0;
    let mut rejected = false;
    for line in &complete {
        if line.is_empty() {
            continue;
        }
        let v = match xia_server::json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                tally.failures.push(format!(
                    "CORRUPT: complete response frame is not JSON ({e}): {line}"
                ));
                continue;
            }
        };
        tally.responses += 1;
        let Some(ok) = v.get_bool("ok") else {
            tally
                .failures
                .push(format!("CORRUPT: response missing boolean 'ok': {line}"));
            continue;
        };
        let busy = v.get_bool("busy").unwrap_or(false);
        if busy {
            tally.busy += 1;
            match v.get_f64("retry_after_ms") {
                Some(ms) if ms > 0.0 => {}
                _ => tally.failures.push(format!(
                    "BUSY response without a positive retry_after_ms: {line}"
                )),
            }
            if v.get_str("cmd") == Some("connect") {
                // Admission rejected the whole connection; nothing we
                // sent gets an answer and EOF follows.
                rejected = true;
                continue;
            }
        }
        if !ok {
            let err = v.get_str("error").unwrap_or("");
            if err.starts_with("bad request") {
                continue; // a garbage frame's error: skipped, unpaired
            }
        }
        // A paired response (success, shed BUSY, TIMEOUT, or any other
        // explicit error) consumes one expected slot.
        if idx >= expected.len() {
            tally.failures.push(format!(
                "CORRUPT: more responses than requests (sent {}, extra: {line})",
                label(&written)
            ));
            continue;
        }
        if ok {
            let field = expected[idx].shape_field();
            if v.get(field).is_none() {
                tally.failures.push(format!(
                    "CROSSED: response to {:?} lacks '{field}': {line}",
                    expected[idx]
                ));
            }
        }
        idx += 1;
    }
    // Under-delivery (idx < expected.len()) is legal: a faulted or
    // rejected connection stops answering early. Count it as faulted.
    if truncated || rejected || idx < expected.len() {
        tally.faulted += 1;
    }
}

fn chaos_db() -> Database {
    let mut db = Database::new();
    db.create_collection("c0");
    for i in 0..3 {
        db.collection_mut("c0").unwrap().insert(
            Document::parse(&format!(
                "<r><item id=\"seed{i}\"><price>{i}</price></item></r>"
            ))
            .unwrap(),
        );
    }
    db
}

/// Run the net-chaos sweep. `progress` is called per finished client
/// thread with (connections_driven_so_far, failures_so_far).
pub fn run_net_chaos(
    config: &NetChaosConfig,
    mut progress: impl FnMut(u64, usize),
) -> NetChaosReport {
    let mut report = NetChaosReport {
        profiles: ChaosProfile::ALL.len(),
        ..NetChaosReport::default()
    };
    let factory = Arc::new(ChaosFactory::new(config.seed));
    let server = Server::start(
        chaos_db(),
        ServerConfig {
            threads: config.workers.max(1),
            admission: AdmissionConfig {
                max_connections: config.max_connections,
                shed_queue: config.shed_queue,
                retry_after_ms: 5,
                ..AdmissionConfig::default()
            },
            transport: factory.clone(),
            request_deadline: Some(Duration::from_secs(5)),
            ..ServerConfig::default()
        },
    );
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(format!("server failed to start: {e}"));
            return report;
        }
    };
    let addr = server.addr();

    // Fan the connection budget over seeded client threads.
    let mut master = Rng::new(config.seed ^ 0xc2b2_ae3d_27d4_eb4f);
    let clients = config.clients.max(1);
    let mut handles = Vec::new();
    for c in 0..clients {
        let mut rng = Rng::new(master.next_u64());
        let share = config.connections / clients as u64
            + u64::from((c as u64) < config.connections % clients as u64);
        let wedge = config.wedge_timeout;
        handles.push(std::thread::spawn(move || {
            let mut tally = ClientTally::default();
            for _ in 0..share {
                drive_connection(addr, &mut rng, wedge, &mut tally);
            }
            tally
        }));
    }
    for h in handles {
        let tally = h.join().expect("client thread");
        report.connections_driven += tally.connections;
        report.requests_sent += tally.requests;
        report.responses_seen += tally.responses;
        report.busy_seen += tally.busy;
        report.faulted_seen += tally.faulted;
        report.failures.extend(tally.failures);
        progress(report.connections_driven, report.failures.len());
    }

    // Quiescence: with every client gone, the gauges must drain.
    let overload = &server.state().metrics().overload;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let live = overload.live.load(Ordering::SeqCst);
        let queued = overload.queued.load(Ordering::SeqCst);
        let in_flight = overload.in_flight.load(Ordering::SeqCst);
        if live == 0 && queued == 0 && in_flight == 0 {
            break;
        }
        if std::time::Instant::now() > deadline {
            report.failures.push(format!(
                "LEAK: gauges did not drain after the sweep \
                 (live={live} queued={queued} in_flight={in_flight})"
            ));
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Post-sweep liveness over an honest connection: the daemon must
    // still answer PING after everything the sweep threw at it.
    factory.set_clean(true);
    match Client::connect(addr) {
        Ok(mut c) => match c.command("ping") {
            Ok(v) if v.get_bool("ok") == Some(true) => {}
            Ok(v) => report
                .failures
                .push(format!("post-sweep PING answered abnormally: {v}")),
            Err(e) => report.failures.push(format!("post-sweep PING failed: {e}")),
        },
        Err(e) => report
            .failures
            .push(format!("post-sweep connect failed: {e}")),
    }

    // Shutdown under a watchdog: a leaked or wedged worker hangs stop().
    let state = server.state().clone();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.stop();
        let _ = tx.send(());
    });
    if rx.recv_timeout(Duration::from_secs(10)).is_err() {
        report.failures.push(
            "LEAK: Server::stop did not join every thread within 10s (leaked worker?)".to_string(),
        );
        return report;
    }

    // Reconciliation: the accounting partitions exactly, and nothing is
    // still live after a clean stop.
    let o = &state.metrics().overload;
    report.accepted = o.conns_accepted.load(Ordering::SeqCst);
    report.rejected = o.conns_rejected.load(Ordering::SeqCst);
    report.served = o.conns_served.load(Ordering::SeqCst);
    report.faulted = o.conns_faulted.load(Ordering::SeqCst);
    if report.accepted != report.rejected + report.served + report.faulted {
        report.failures.push(format!(
            "RECONCILE: accepted {} != rejected {} + served {} + faulted {}",
            report.accepted, report.rejected, report.served, report.faulted
        ));
    }
    let live = o.live.load(Ordering::SeqCst);
    let queued = o.queued.load(Ordering::SeqCst);
    let in_flight = o.in_flight.load(Ordering::SeqCst);
    if live != 0 || queued != 0 || in_flight != 0 {
        report.failures.push(format!(
            "RECONCILE: gauges nonzero after stop \
             (live={live} queued={queued} in_flight={in_flight})"
        ));
    }
    report
}

/// Render the sweep summary the CLI prints.
pub fn render_report(report: &NetChaosReport) -> String {
    format!(
        "net-chaos: {} connections over {} fault profiles — {} requests, \
         {} responses, {} busy, {} faulted ends (client view)\n\
         server accounting: accepted {} = rejected {} + served {} + faulted {}\n\
         {}",
        report.connections_driven,
        report.profiles,
        report.requests_sent,
        report.responses_seen,
        report.busy_seen,
        report.faulted_seen,
        report.accepted,
        report.rejected,
        report.served,
        report.faulted,
        if report.ok() {
            "invariants: OK (no wedges, no leaks, accounting reconciles)".to_string()
        } else {
            format!("VIOLATIONS ({}):", report.failures.len())
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned-seed smoke: a short sweep must be clean. The full
    /// pinned-seed sweep (≥300 connections) lives in scripts/check.sh
    /// (`xia fuzz --net-chaos --seed 42 --budget 300`).
    #[test]
    fn short_net_chaos_sweep_is_clean() {
        let report = run_net_chaos(&NetChaosConfig::new(42, 60), |_, _| {});
        assert!(report.ok(), "{:#?}", report.failures);
        assert_eq!(report.connections_driven, 60);
        assert!(report.responses_seen > 0, "clients got responses");
        assert!(
            report.accepted >= 60,
            "every driven connection was accepted (plus the liveness ping)"
        );
        assert!(report.faulted > 0, "fault profiles actually faulted ends");
    }
}
