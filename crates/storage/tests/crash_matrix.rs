//! The crash matrix: sweep EVERY fault point in the durability
//! protocol and pin the invariant
//!
//! > after any injected crash, recovery yields either the old state or
//! > the new state, byte-identical — never an error, never corruption.
//!
//! Fault points come from a dry run: `FaultVfs` records the trace of
//! mutating filesystem ops an operation performs, then the matrix
//! re-runs the operation once per (op index × fault kind), where fault
//! kinds are a clean op failure, a crash immediately after the op, and
//! — for write ops — a torn write at several offsets. After each
//! faulted run, recovery runs on the *real* filesystem (the next
//! process boots clean) and the recovered state's fingerprint must
//! equal exactly the pre-state or the post-state.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use xia_storage::vfs::OpRecord;
use xia_storage::{
    fingerprint, recover_database, Database, DurableStore, Fault, FaultVfs, RealVfs, WalOp,
};
use xia_xml::Document;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xia_matrix_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Recursive copy so every matrix cell starts from the same on-disk
/// base state (tests may use std::fs directly; persist code may not).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

fn build_db() -> Database {
    let mut db = Database::new();
    db.create_collection("shop");
    for i in 0..3 {
        db.collection_mut("shop").unwrap().insert(
            Document::parse(&format!(
                "<shop><item id=\"i{i}\"><price>{}</price></item></shop>",
                i * 10
            ))
            .unwrap(),
        );
    }
    db.create_collection("people");
    db.collection_mut("people")
        .unwrap()
        .insert(Document::parse("<person><name>ada</name></person>").unwrap());
    db
}

/// Every fault for every op in `trace`: clean failure, crash-after,
/// and torn writes at the start/one-byte/middle/almost-end offsets.
fn fault_matrix(trace: &[OpRecord]) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (op, rec) in trace.iter().enumerate() {
        faults.push(Fault::FailOp(op));
        faults.push(Fault::CrashAfter(op));
        if rec.is_write {
            let mut keeps = vec![0, 1, rec.data_len / 2, rec.data_len.saturating_sub(1)];
            keeps.sort_unstable();
            keeps.dedup();
            for keep in keeps {
                faults.push(Fault::TornWrite { op, keep });
            }
        }
    }
    faults
}

fn recovered_fingerprint(dir: &Path) -> String {
    let rec =
        recover_database(&RealVfs, dir).expect("recovery must never fail after an injected crash");
    fingerprint(&rec.database)
}

/// Crash matrix over `save_database`/checkpoint: generation staging,
/// manifest, fsyncs, atomic rename, WAL reset, pruning.
#[test]
fn checkpoint_survives_every_fault_point() {
    // Base state: generation 1 of the initial database, plus one WAL
    // record — so "old state" exercises snapshot + WAL replay, and the
    // checkpoint under test also has pruning work to do.
    let base = tmp("ckpt_base");
    let db = build_db();
    let (mut store, _) = DurableStore::open(&base, Arc::new(RealVfs)).unwrap();
    store.checkpoint(&db).unwrap();
    let walled = WalOp::Insert {
        collection: "shop".into(),
        xml: "<shop><item id=\"w\"><price>77</price></item></shop>".into(),
    };
    store.append(&walled).unwrap();
    let fp_old = recovered_fingerprint(&base);

    // New state: the WAL op plus one more mutation, checkpointed.
    let mut db_new = build_db();
    walled.apply(&mut db_new);
    db_new
        .collection_mut("people")
        .unwrap()
        .insert(Document::parse("<person><name>grace</name></person>").unwrap());
    let fp_new = fingerprint(&db_new);
    assert_ne!(fp_old, fp_new);

    // Dry run for the op trace.
    let dry_dir = tmp("ckpt_dry");
    copy_dir(&base, &dry_dir);
    let dry = Arc::new(FaultVfs::new(Arc::new(RealVfs), None));
    let (mut dry_store, _) = DurableStore::open(&dry_dir, dry.clone()).unwrap();
    dry_store.checkpoint(&db_new).unwrap();
    assert_eq!(
        recovered_fingerprint(&dry_dir),
        fp_new,
        "fault-free run lands on new"
    );
    let trace = dry.trace();
    assert!(trace.len() > 10, "checkpoint is a multi-step protocol");

    let scratch = tmp("ckpt_cell");
    for fault in fault_matrix(&trace) {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&base, &scratch);
        let vfs = Arc::new(FaultVfs::new(Arc::new(RealVfs), Some(fault)));
        let (mut s, _) = DurableStore::open(&scratch, vfs).unwrap();
        let result = s.checkpoint(&db_new);
        let fp = recovered_fingerprint(&scratch);
        assert!(
            fp == fp_old || fp == fp_new,
            "fault {fault:?}: recovery produced a third state\n{fp}"
        );
        if result.is_ok() {
            assert_eq!(fp, fp_new, "fault {fault:?}: checkpoint claimed success");
        }
    }
    for d in [base, dry_dir, scratch] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Crash matrix over a single WAL append (+ its fsync).
#[test]
fn wal_append_survives_every_fault_point() {
    let base = tmp("wal_base");
    let db = build_db();
    let (mut store, _) = DurableStore::open(&base, Arc::new(RealVfs)).unwrap();
    store.checkpoint(&db).unwrap();
    // A prior record, so a torn second append must not damage it.
    let first = WalOp::CreateIndex {
        collection: "shop".into(),
        id: 1,
        data_type: xia_index::DataType::Double,
        pattern: "//item/price".into(),
    };
    store.append(&first).unwrap();
    let fp_old = recovered_fingerprint(&base);

    let op = WalOp::Insert {
        collection: "shop".into(),
        xml: "<shop><item id=\"n\"><price>5</price></item></shop>".into(),
    };
    let fp_new = {
        let mut db_new = build_db();
        first.apply(&mut db_new);
        op.apply(&mut db_new);
        fingerprint(&db_new)
    };
    assert_ne!(fp_old, fp_new);

    let dry_dir = tmp("wal_dry");
    copy_dir(&base, &dry_dir);
    let dry = Arc::new(FaultVfs::new(Arc::new(RealVfs), None));
    let (mut dry_store, _) = DurableStore::open(&dry_dir, dry.clone()).unwrap();
    dry_store.append(&op).unwrap();
    assert_eq!(recovered_fingerprint(&dry_dir), fp_new);
    let trace = dry.trace();
    assert!(trace.len() >= 2, "append + fsync");

    let scratch = tmp("wal_cell");
    for fault in fault_matrix(&trace) {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&base, &scratch);
        let vfs = Arc::new(FaultVfs::new(Arc::new(RealVfs), Some(fault)));
        let (mut s, _) = DurableStore::open(&scratch, vfs).unwrap();
        let result = s.append(&op);
        let fp = recovered_fingerprint(&scratch);
        assert!(
            fp == fp_old || fp == fp_new,
            "fault {fault:?}: recovery produced a third state\n{fp}"
        );
        if result.is_ok() {
            assert_eq!(fp, fp_new, "fault {fault:?}: append claimed success");
        }
    }
    for d in [base, dry_dir, scratch] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Crash matrix over a group-commit batch append (`append_batch`):
/// several records written in ONE buffer with ONE fsync. Per-record CRC
/// framing means a fault anywhere may leave a *prefix* of the batch
/// durable (the torn tail record is discarded at recovery) — but never
/// corruption, reordering, or a state outside the prefix chain. A
/// successful return still guarantees the whole batch.
#[test]
fn wal_batch_append_survives_every_fault_point() {
    let base = tmp("batch_base");
    let db = build_db();
    let (mut store, _) = DurableStore::open(&base, Arc::new(RealVfs)).unwrap();
    store.checkpoint(&db).unwrap();
    // A prior record, so the faulted batch must not damage what's there.
    let first = WalOp::CreateIndex {
        collection: "shop".into(),
        id: 1,
        data_type: xia_index::DataType::Double,
        pattern: "//item/price".into(),
    };
    store.append(&first).unwrap();

    let batch: Vec<WalOp> = (0..3)
        .map(|i| WalOp::Insert {
            collection: "shop".into(),
            xml: format!("<shop><item id=\"b{i}\"><price>{i}</price></item></shop>"),
        })
        .collect();

    // Every legal recovered state: base, base+1 op, ..., full batch.
    let prefix_fps: Vec<String> = (0..=batch.len())
        .map(|k| {
            let mut db_k = build_db();
            first.apply(&mut db_k);
            for op in &batch[..k] {
                op.apply(&mut db_k);
            }
            fingerprint(&db_k)
        })
        .collect();
    let fp_new = prefix_fps.last().unwrap().clone();
    assert_eq!(recovered_fingerprint(&base), prefix_fps[0]);

    let dry_dir = tmp("batch_dry");
    copy_dir(&base, &dry_dir);
    let dry = Arc::new(FaultVfs::new(Arc::new(RealVfs), None));
    let (mut dry_store, _) = DurableStore::open(&dry_dir, dry.clone()).unwrap();
    dry_store.append_batch(&batch).unwrap();
    assert_eq!(recovered_fingerprint(&dry_dir), fp_new);
    let trace = dry.trace();
    assert_eq!(
        trace.iter().filter(|r| r.is_write).count(),
        1,
        "the whole batch is one write (that is the point of group commit)"
    );

    let scratch = tmp("batch_cell");
    for fault in fault_matrix(&trace) {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&base, &scratch);
        let vfs = Arc::new(FaultVfs::new(Arc::new(RealVfs), Some(fault)));
        let (mut s, _) = DurableStore::open(&scratch, vfs).unwrap();
        let result = s.append_batch(&batch);
        let fp = recovered_fingerprint(&scratch);
        assert!(
            prefix_fps.contains(&fp),
            "fault {fault:?}: recovery left a non-prefix state\n{fp}"
        );
        if result.is_ok() {
            assert_eq!(fp, fp_new, "fault {fault:?}: batch append claimed success");
        }
    }
    for d in [base, dry_dir, scratch] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// A sequence of appends with a crash in the middle recovers to a
/// clean prefix of the sequence — never reordered, never mixed.
#[test]
fn wal_sequences_recover_to_a_prefix() {
    let ops: Vec<WalOp> = (0..5)
        .map(|i| WalOp::Insert {
            collection: "shop".into(),
            xml: format!("<shop><item id=\"s{i}\"><price>{i}</price></item></shop>"),
        })
        .collect();

    // Fingerprints of every legal prefix.
    let prefix_fps: Vec<String> = (0..=ops.len())
        .map(|k| {
            let mut db = build_db();
            for op in &ops[..k] {
                op.apply(&mut db);
            }
            fingerprint(&db)
        })
        .collect();

    // Each append is 2 vfs ops (append + sync); sweep a crash at every
    // op across the whole sequence.
    let scratch = tmp("walseq");
    for crash_at in 0..(2 * ops.len()) {
        let _ = std::fs::remove_dir_all(&scratch);
        let (mut setup, _) = DurableStore::open(&scratch, Arc::new(RealVfs)).unwrap();
        setup.checkpoint(&build_db()).unwrap();
        let vfs = Arc::new(FaultVfs::new(
            Arc::new(RealVfs),
            Some(Fault::CrashAfter(crash_at)),
        ));
        let (mut s, _) = DurableStore::open(&scratch, vfs).unwrap();
        for op in &ops {
            if s.append(op).is_err() {
                break;
            }
        }
        let fp = recovered_fingerprint(&scratch);
        assert!(
            prefix_fps.contains(&fp),
            "crash after vfs-op {crash_at}: recovered state is not a prefix"
        );
    }
    std::fs::remove_dir_all(&scratch).ok();
}
