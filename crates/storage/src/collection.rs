//! A collection of XML documents with maintained indexes and statistics.

use crate::stats::CollectionStats;
use std::sync::Arc;
use xia_index::{IndexDefinition, IndexId, PhysicalIndex};
use xia_xml::Document;

/// Identifier of a document within a collection. Slots are never reused,
/// so a `DocId` stays valid (but dead) after deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// What one insert/delete cost in index maintenance — the advisor charges
/// this against index benefit for update workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateReport {
    /// Index entries added or removed across all physical indexes.
    pub index_entries_touched: usize,
    /// Number of physical indexes that had to be maintained.
    pub indexes_touched: usize,
    /// Nodes pattern-matched during maintenance (CPU component).
    pub nodes_matched: usize,
}

/// A named collection of XML documents (the analogue of a table with an
/// XML column), plus its physical indexes and statistics.
///
/// Documents are held behind `Arc` so cloning a collection — the
/// copy-on-write step of the snapshot-isolated server — shares every
/// document structurally instead of deep-copying the dominant part of
/// the data. Statistics and indexes are cloned (they are the mutable
/// parts a write batch goes on to touch anyway).
#[derive(Debug, Clone)]
pub struct Collection {
    name: String,
    docs: Vec<Option<Arc<Document>>>,
    stats: CollectionStats,
    indexes: Vec<PhysicalIndex>,
}

impl Collection {
    pub fn new(name: impl Into<String>) -> Collection {
        Collection {
            name: name.into(),
            docs: Vec::new(),
            stats: CollectionStats::new(),
            indexes: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Insert a document, maintaining statistics and all physical indexes.
    pub fn insert(&mut self, doc: Document) -> (DocId, UpdateReport) {
        self.insert_arc(Arc::new(doc))
    }

    /// [`Collection::insert`] for a document already behind an `Arc`
    /// (e.g. re-applying an op from another snapshot without copying).
    pub fn insert_arc(&mut self, doc: Arc<Document>) -> (DocId, UpdateReport) {
        let id = DocId(self.docs.len() as u32);
        self.stats.add_document(&doc);
        let mut report = UpdateReport::default();
        for ix in &mut self.indexes {
            let added = ix.insert_document(id.0, &doc);
            report.index_entries_touched += added;
            report.indexes_touched += 1;
            report.nodes_matched += doc.node_count();
        }
        self.docs.push(Some(doc));
        (id, report)
    }

    /// Delete a document, maintaining statistics and indexes.
    /// Returns `None` if the id is already dead.
    pub fn delete(&mut self, id: DocId) -> Option<UpdateReport> {
        let slot = self.docs.get_mut(id.0 as usize)?;
        let doc = slot.take()?;
        self.stats.remove_document(&doc);
        let mut report = UpdateReport::default();
        for ix in &mut self.indexes {
            report.index_entries_touched += ix.remove_document(id.0);
            report.indexes_touched += 1;
        }
        Some(report)
    }

    /// Fetch a live document.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id.0 as usize).and_then(Option::as_deref)
    }

    /// Iterate over live `(id, document)` pairs.
    pub fn documents(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_deref().map(|doc| (DocId(i as u32), doc)))
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.stats.doc_count as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> &CollectionStats {
        &self.stats
    }

    /// Build a physical index over the current contents.
    /// Returns the number of entries built.
    pub fn create_index(&mut self, def: IndexDefinition) -> usize {
        let mut ix = PhysicalIndex::build(def);
        let mut entries = 0;
        for (id, doc) in self
            .docs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_deref().map(|doc| (i as u32, doc)))
        {
            entries += ix.insert_document(id, doc);
        }
        self.indexes.push(ix);
        entries
    }

    /// Drop an index by id. Returns true if it existed.
    pub fn drop_index(&mut self, id: IndexId) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|ix| ix.definition().id != id);
        self.indexes.len() != before
    }

    /// Drop every physical index.
    pub fn drop_all_indexes(&mut self) {
        self.indexes.clear();
    }

    /// The physical indexes on this collection.
    pub fn indexes(&self) -> &[PhysicalIndex] {
        &self.indexes
    }

    /// Look up a physical index by id.
    pub fn index(&self, id: IndexId) -> Option<&PhysicalIndex> {
        self.indexes.iter().find(|ix| ix.definition().id == id)
    }

    /// Total pages across data and indexes.
    pub fn total_pages(&self) -> u64 {
        self.stats.data_pages()
            + self
                .indexes
                .iter()
                .map(|ix| ix.page_count() as u64)
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_index::{DataType, IndexId};
    use xia_xpath::LinearPath;

    fn doc(xml: &str) -> Document {
        Document::parse(xml).unwrap()
    }

    fn price_index(id: u32) -> IndexDefinition {
        IndexDefinition::new(
            IndexId(id),
            LinearPath::parse("//item/price").unwrap(),
            DataType::Double,
        )
    }

    #[test]
    fn insert_and_get() {
        let mut c = Collection::new("auctions");
        let (id, _) = c.insert(doc("<site><item><price>3</price></item></site>"));
        assert_eq!(c.len(), 1);
        assert!(c.get(id).is_some());
        assert_eq!(
            c.stats()
                .count_matching(&LinearPath::parse("//price").unwrap()),
            1
        );
    }

    #[test]
    fn delete_updates_stats_and_indexes() {
        let mut c = Collection::new("auctions");
        c.create_index(price_index(1));
        let (id, rep) = c.insert(doc("<site><item><price>3</price></item></site>"));
        assert_eq!(rep.index_entries_touched, 1);
        let rep = c.delete(id).unwrap();
        assert_eq!(rep.index_entries_touched, 1);
        assert_eq!(c.len(), 0);
        assert!(c.get(id).is_none());
        assert!(c.delete(id).is_none(), "double delete is a no-op");
        assert_eq!(c.index(IndexId(1)).unwrap().len(), 0);
    }

    #[test]
    fn create_index_over_existing_documents() {
        let mut c = Collection::new("auctions");
        c.insert(doc("<site><item><price>3</price></item></site>"));
        c.insert(doc(
            "<site><item><price>5</price></item><item><price>6</price></item></site>",
        ));
        let entries = c.create_index(price_index(1));
        assert_eq!(entries, 3);
        assert_eq!(c.index(IndexId(1)).unwrap().len(), 3);
    }

    #[test]
    fn insert_maintains_existing_indexes() {
        let mut c = Collection::new("auctions");
        c.create_index(price_index(1));
        let (_, rep) = c.insert(doc("<site><item><price>5</price></item></site>"));
        assert_eq!(rep.indexes_touched, 1);
        assert_eq!(rep.index_entries_touched, 1);
        assert!(rep.nodes_matched > 0);
    }

    #[test]
    fn drop_index() {
        let mut c = Collection::new("x");
        c.create_index(price_index(1));
        assert!(c.drop_index(IndexId(1)));
        assert!(!c.drop_index(IndexId(1)));
        assert!(c.indexes().is_empty());
    }

    #[test]
    fn total_pages_counts_indexes() {
        let mut c = Collection::new("x");
        c.insert(doc("<site><item><price>5</price></item></site>"));
        let base = c.total_pages();
        c.create_index(price_index(1));
        assert!(c.total_pages() > base);
    }

    #[test]
    fn documents_iterates_live_only() {
        let mut c = Collection::new("x");
        let (a, _) = c.insert(doc("<a/>"));
        let (b, _) = c.insert(doc("<b/>"));
        c.delete(a).unwrap();
        let ids: Vec<DocId> = c.documents().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![b]);
    }
}
