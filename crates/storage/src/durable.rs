//! Crash-safe durability: generational snapshots + an operation WAL.
//!
//! ## Layout
//!
//! ```text
//! <dir>/gen-000002/            # newest complete generation (committed)
//!         GENERATION           #   CRC32-checksummed file manifest
//!         shop/manifest.txt    #   one subdirectory per collection
//!         shop/docs/000000.xml #   (xia_storage::persist layout)
//! <dir>/gen-000003.tmp/        # in-progress staging (discarded on recovery)
//! <dir>/wal-000002.log         # ops applied since gen 2 was checkpointed
//! ```
//!
//! ## Protocol
//!
//! A **checkpoint** stages the whole database under `gen-<n>.tmp/`,
//! writes a `GENERATION` manifest recording a CRC32 and length for
//! every file (plus a checksum of the manifest itself), fsyncs
//! everything, and commits with a single atomic rename to `gen-<n>/`.
//! Only then is a fresh empty WAL created and the older generation
//! pruned. The rename is the commit point: a crash before it leaves the
//! old generation untouched; a crash after it leaves the new one.
//!
//! The **WAL** is append-only, one operation per line, each line
//! carrying its own CRC32. [`recover_database`] loads the newest
//! generation whose manifest validates, silently discards `.tmp`
//! stragglers, and replays the generation's WAL, stopping at the first
//! torn or corrupt record (a partially-flushed tail).
//!
//! The invariant — *after any injected crash, recovery yields either
//! the pre-operation state or the post-operation state, byte-identical,
//! never corruption* — is pinned by `tests/crash_matrix.rs`, which
//! sweeps every fault point exposed by [`crate::vfs::FaultVfs`].

use crate::database::Database;
use crate::persist::{load_database_flat, save_collection_with, PersistError};
use crate::vfs::Vfs;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xia_index::{DataType, IndexDefinition, IndexId};
use xia_xml::Document;
use xia_xpath::LinearPath;

/// Per-generation manifest file name (lives at the generation root,
/// next to the collection subdirectories).
pub const GEN_MANIFEST: &str = "GENERATION";

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled, std-only.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the polynomial used by zip/gzip/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Generation naming
// ---------------------------------------------------------------------

fn gen_dir_name(n: u64) -> String {
    format!("gen-{n:06}")
}

fn wal_name(n: u64) -> String {
    format!("wal-{n:06}.log")
}

/// Path of the WAL belonging to generation `n` under `dir`.
pub fn wal_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(wal_name(n))
}

/// Parse `gen-NNNNNN` (committed) or `gen-NNNNNN.tmp` (partial).
/// Returns `(number, is_partial)`.
fn parse_gen_name(name: &str) -> Option<(u64, bool)> {
    let (body, partial) = match name.strip_suffix(".tmp") {
        Some(body) => (body, true),
        None => (name, false),
    };
    let digits = body.strip_prefix("gen-")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((digits.parse().ok()?, partial))
}

// ---------------------------------------------------------------------
// WAL operations
// ---------------------------------------------------------------------

/// One logged mutation. The WAL records exactly what the daemon's write
/// commands do, so replaying it over the checkpointed generation
/// reconstructs the live state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert a document (canonical serialization) into a collection,
    /// creating the collection if it does not exist yet.
    Insert {
        collection: String,
        xml: String,
    },
    CreateIndex {
        collection: String,
        id: u32,
        data_type: DataType,
        pattern: String,
    },
    DropIndex {
        collection: String,
        id: u32,
    },
    /// Create an empty collection if it does not exist yet. Older WALs
    /// never contain this record, so decoding stays backward
    /// compatible.
    CreateCollection {
        collection: String,
    },
}

/// Percent-escape the characters that would break the one-line,
/// space-separated record format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            let code = u8::from_str_radix(hex, 16).ok()?;
            out.push(code as char);
            i += 3;
        } else {
            let ch = s[i..].chars().next()?;
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Some(out)
}

impl WalOp {
    /// The record payload (no CRC prefix, no newline).
    fn encode(&self) -> String {
        match self {
            WalOp::Insert { collection, xml } => {
                format!("insert {} {}", escape(collection), escape(xml))
            }
            WalOp::CreateIndex {
                collection,
                id,
                data_type,
                pattern,
            } => format!(
                "create-index {} {id} {data_type} {}",
                escape(collection),
                escape(pattern)
            ),
            WalOp::DropIndex { collection, id } => {
                format!("drop-index {} {id}", escape(collection))
            }
            WalOp::CreateCollection { collection } => {
                format!("create-collection {}", escape(collection))
            }
        }
    }

    fn decode(payload: &str) -> Option<WalOp> {
        let (kind, rest) = payload.split_once(' ')?;
        match kind {
            "insert" => {
                let (coll, xml) = rest.split_once(' ')?;
                Some(WalOp::Insert {
                    collection: unescape(coll)?,
                    xml: unescape(xml)?,
                })
            }
            "create-index" => {
                let mut parts = rest.splitn(4, ' ');
                let collection = unescape(parts.next()?)?;
                let id: u32 = parts.next()?.parse().ok()?;
                let data_type = match parts.next()? {
                    "VARCHAR" => DataType::Varchar,
                    "DOUBLE" => DataType::Double,
                    _ => return None,
                };
                let pattern = unescape(parts.next()?)?;
                Some(WalOp::CreateIndex {
                    collection,
                    id,
                    data_type,
                    pattern,
                })
            }
            "drop-index" => {
                let (coll, id) = rest.split_once(' ')?;
                Some(WalOp::DropIndex {
                    collection: unescape(coll)?,
                    id: id.parse().ok()?,
                })
            }
            "create-collection" => Some(WalOp::CreateCollection {
                collection: unescape(rest)?,
            }),
            _ => None,
        }
    }

    /// The full on-disk record line, CRC32 over the payload first.
    fn record(&self) -> String {
        let payload = self.encode();
        format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
    }

    /// Apply this op to `db`. Returns false when the op no longer
    /// applies (e.g. dropping an index that is not there) — recovery
    /// counts but does not fail on those.
    pub fn apply(&self, db: &mut Database) -> bool {
        match self {
            WalOp::Insert { collection, xml } => {
                let Ok(doc) = Document::parse(xml) else {
                    return false;
                };
                if db.collection(collection).is_none() {
                    db.create_collection(collection);
                }
                db.collection_mut(collection)
                    .expect("just ensured")
                    .insert(doc);
                true
            }
            WalOp::CreateIndex {
                collection,
                id,
                data_type,
                pattern,
            } => {
                let Ok(pattern) = LinearPath::parse(pattern) else {
                    return false;
                };
                let Some(coll) = db.collection_mut(collection) else {
                    return false;
                };
                coll.create_index(IndexDefinition::new(IndexId(*id), pattern, *data_type));
                true
            }
            WalOp::DropIndex { collection, id } => db
                .collection_mut(collection)
                .is_some_and(|c| c.drop_index(IndexId(*id))),
            WalOp::CreateCollection { collection } => db.create_collection(collection),
        }
    }
}

impl fmt::Display for WalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.encode())
    }
}

// ---------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------

/// List committed generation numbers under `dir`, ascending, plus the
/// partial (`.tmp`) staging dirs found.
fn scan_generations(vfs: &dyn Vfs, dir: &Path) -> Result<(Vec<u64>, Vec<PathBuf>), PersistError> {
    let mut committed = Vec::new();
    let mut partial = Vec::new();
    for entry in vfs.read_dir(dir)? {
        let Some(name) = entry.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some((n, is_partial)) = parse_gen_name(name) {
            if !vfs.is_dir(&entry) {
                continue;
            }
            if is_partial {
                partial.push(entry);
            } else {
                committed.push(n);
            }
        }
    }
    committed.sort_unstable();
    Ok((committed, partial))
}

/// Collect every file under `root`, as paths relative to it, sorted.
fn walk_files(
    vfs: &dyn Vfs,
    root: &Path,
    sub: &Path,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in vfs.read_dir(&root.join(sub))? {
        let rel = sub.join(entry.file_name().unwrap_or_default());
        if vfs.is_dir(&entry) {
            walk_files(vfs, root, &rel, out)?;
        } else {
            out.push(rel);
        }
    }
    Ok(())
}

/// fsync every file and directory under `root`, leaves first.
fn sync_tree(vfs: &dyn Vfs, root: &Path) -> std::io::Result<()> {
    for entry in vfs.read_dir(root)? {
        if vfs.is_dir(&entry) {
            sync_tree(vfs, &entry)?;
        } else {
            vfs.sync(&entry)?;
        }
    }
    vfs.sync(root)
}

/// Stage and atomically commit generation `n` of `db` under `dir`.
/// On success the generation directory is durable and a fresh empty WAL
/// for it exists; older generations and WALs have been pruned.
fn checkpoint_at(vfs: &dyn Vfs, db: &Database, dir: &Path, n: u64) -> Result<(), PersistError> {
    let staged = dir.join(format!("{}.tmp", gen_dir_name(n)));
    if vfs.exists(&staged) {
        vfs.remove_dir_all(&staged)?;
    }
    vfs.create_dir_all(&staged)?;
    for coll in db.collections() {
        save_collection_with(vfs, coll, &staged.join(coll.name()))?;
    }

    // Manifest: CRC32 + length for every staged file, then a checksum
    // of the manifest body itself so a torn manifest is detectable.
    let mut files = Vec::new();
    walk_files(vfs, &staged, Path::new(""), &mut files)?;
    files.sort();
    let mut body = format!("generation {n}\n");
    for rel in &files {
        let bytes = vfs.read(&staged.join(rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        let _ = writeln!(
            body,
            "file {} {:08x} {}",
            escape(&rel),
            crc32(&bytes),
            bytes.len()
        );
    }
    let _ = writeln!(body, "checksum {:08x}", crc32(body.as_bytes()));
    vfs.write(&staged.join(GEN_MANIFEST), body.as_bytes())?;

    // Durability barrier, then the atomic commit point.
    sync_tree(vfs, &staged)?;
    let committed = dir.join(gen_dir_name(n));
    if vfs.exists(&committed) {
        vfs.remove_dir_all(&committed)?;
    }
    vfs.rename(&staged, &committed)?;
    vfs.sync(dir)?;

    // Fresh WAL for the new generation, then prune superseded state.
    // A crash in here is benign: recovery keys everything off the
    // newest committed generation.
    let wal = wal_path(dir, n);
    vfs.write(&wal, b"")?;
    vfs.sync(&wal)?;
    let (older, partial) = scan_generations(vfs, dir)?;
    for old in older.into_iter().filter(|&g| g < n) {
        vfs.remove_dir_all(&dir.join(gen_dir_name(old)))?;
        let old_wal = wal_path(dir, old);
        if vfs.exists(&old_wal) {
            vfs.remove_file(&old_wal)?;
        }
    }
    for p in partial {
        vfs.remove_dir_all(&p)?;
    }
    Ok(())
}

/// One-shot crash-safe snapshot of `db` under `dir`: commit the next
/// generation after the newest one present. This is what
/// [`crate::persist::save_database`] calls.
pub fn checkpoint_database(vfs: &dyn Vfs, db: &Database, dir: &Path) -> Result<(), PersistError> {
    vfs.create_dir_all(dir)?;
    let (committed, _) = scan_generations(vfs, dir)?;
    let next = committed.last().copied().unwrap_or(0) + 1;
    checkpoint_at(vfs, db, dir, next)
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// What [`recover_database`] found.
pub struct Recovered {
    pub database: Database,
    /// Generation the database was loaded from (0 = none yet).
    pub generation: u64,
    /// WAL records replayed over the snapshot.
    pub wal_records: usize,
    /// WAL records discarded: a torn/corrupt tail, or ops that no
    /// longer applied.
    pub wal_discarded: usize,
    /// Partial (`.tmp`) generations and corrupt generations discarded.
    pub discarded_generations: usize,
}

/// Validate a committed generation directory against its `GENERATION`
/// manifest: manifest checksum, then per-file CRC32 + length.
fn generation_is_valid(vfs: &dyn Vfs, gen_dir: &Path) -> bool {
    let Ok(text) = vfs.read_to_string(&gen_dir.join(GEN_MANIFEST)) else {
        return false;
    };
    // Split off the trailing "checksum XXXXXXXX" line.
    let body_end = match text.trim_end_matches('\n').rfind('\n') {
        Some(i) => i + 1,
        None => return false,
    };
    let (body, tail) = text.split_at(body_end);
    let Some(stated) = tail
        .trim()
        .strip_prefix("checksum ")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
    else {
        return false;
    };
    if crc32(body.as_bytes()) != stated {
        return false;
    }
    for line in body.lines() {
        let Some(rest) = line.strip_prefix("file ") else {
            continue;
        };
        let mut parts = rest.rsplitn(3, ' ');
        let (Some(len), Some(crc), Some(rel)) = (parts.next(), parts.next(), parts.next()) else {
            return false;
        };
        let (Ok(len), Ok(crc), Some(rel)) = (
            len.parse::<usize>(),
            u32::from_str_radix(crc, 16),
            unescape(rel),
        ) else {
            return false;
        };
        let Ok(bytes) = vfs.read(&gen_dir.join(rel)) else {
            return false;
        };
        if bytes.len() != len || crc32(&bytes) != crc {
            return false;
        }
    }
    true
}

/// Replay the WAL for generation `n` (if present) over `db`.
/// Returns `(applied, discarded)`. Stops at the first torn or corrupt
/// record — everything before it is intact by CRC.
fn replay_wal(vfs: &dyn Vfs, dir: &Path, n: u64, db: &mut Database) -> (usize, usize) {
    let path = wal_path(dir, n);
    let Ok(text) = vfs.read_to_string(&path) else {
        return (0, 0);
    };
    let mut applied = 0;
    let mut discarded = 0;
    let mut offset = 0;
    while offset < text.len() {
        // A record is only trustworthy with its newline terminator; a
        // tail without one is a torn append.
        let Some(nl) = text[offset..].find('\n') else {
            discarded += 1;
            break;
        };
        let line = &text[offset..offset + nl];
        offset += nl + 1;
        let Some((crc_hex, payload)) = line.split_once(' ') else {
            discarded += 1;
            break;
        };
        let Ok(stated) = u32::from_str_radix(crc_hex, 16) else {
            discarded += 1;
            break;
        };
        if crc32(payload.as_bytes()) != stated {
            discarded += 1;
            break;
        }
        match WalOp::decode(payload) {
            Some(op) if op.apply(db) => applied += 1,
            _ => discarded += 1, // intact but inapplicable: skip, keep going
        }
    }
    (applied, discarded)
}

/// Recover a database from `dir`: newest complete generation + WAL
/// replay; partial generations silently discarded; flat legacy layouts
/// loaded as-is. An empty or absent-of-snapshots directory recovers to
/// an empty database.
pub fn recover_database(vfs: &dyn Vfs, dir: &Path) -> Result<Recovered, PersistError> {
    let (committed, partial) = scan_generations(vfs, dir)?;
    let mut discarded_generations = 0;
    for p in &partial {
        // Best-effort cleanup; a read-only volume still recovers.
        if vfs.remove_dir_all(p).is_ok() {
            discarded_generations += 1;
        }
    }

    if committed.is_empty() {
        // Legacy flat layout (or an empty directory).
        let database = load_database_flat(vfs, dir)?;
        return Ok(Recovered {
            database,
            generation: 0,
            wal_records: 0,
            wal_discarded: 0,
            discarded_generations,
        });
    }

    let mut invalid = Vec::new();
    for &n in committed.iter().rev() {
        let gen_dir = dir.join(gen_dir_name(n));
        if !generation_is_valid(vfs, &gen_dir) {
            invalid.push(n);
            discarded_generations += 1;
            continue;
        }
        let mut database =
            load_database_flat(vfs, &gen_dir).map_err(|e| PersistError::Collection {
                dir: gen_dir.display().to_string(),
                source: Box::new(e),
            })?;
        let (wal_records, wal_discarded) = replay_wal(vfs, dir, n, &mut database);
        return Ok(Recovered {
            database,
            generation: n,
            wal_records,
            wal_discarded,
            discarded_generations,
        });
    }
    Err(PersistError::BadManifest(format!(
        "no complete generation under {} (all of {invalid:?} failed checksum validation)",
        dir.display()
    )))
}

// ---------------------------------------------------------------------
// DurableStore — the long-lived handle the daemon holds
// ---------------------------------------------------------------------

/// A durable database directory: tracks the current generation, appends
/// to its WAL, and rolls new generations via [`DurableStore::checkpoint`].
pub struct DurableStore {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    generation: u64,
    wal_records: u64,
}

impl DurableStore {
    /// Open (and recover) the store at `dir`, creating it if absent.
    pub fn open(
        dir: impl Into<PathBuf>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(DurableStore, Recovered), PersistError> {
        let dir = dir.into();
        if !vfs.exists(&dir) {
            vfs.create_dir_all(&dir)?;
        }
        let recovered = recover_database(&*vfs, &dir)?;
        let store = DurableStore {
            dir,
            vfs,
            generation: recovered.generation,
            wal_records: recovered.wal_records as u64,
        };
        Ok((store, recovered))
    }

    /// Commit a new generation holding `db` and reset the WAL.
    pub fn checkpoint(&mut self, db: &Database) -> Result<(), PersistError> {
        let next = self.generation + 1;
        checkpoint_at(&*self.vfs, db, &self.dir, next)?;
        self.generation = next;
        self.wal_records = 0;
        Ok(())
    }

    /// Append one operation to the current WAL and fsync it. Call this
    /// *before* applying the op in memory (write-ahead): a failed
    /// append leaves disk at the old state, which recovery restores.
    pub fn append(&mut self, op: &WalOp) -> Result<(), PersistError> {
        self.append_batch(std::slice::from_ref(op))
    }

    /// **Group commit**: append a whole batch of operations as one
    /// write and one fsync. This is the durability half of the server's
    /// committer — N pending writes pay for a single `sync`, which is
    /// what makes batched write throughput scale past fsync latency.
    ///
    /// Crash semantics are per-record, exactly as for [`append`]: every
    /// record carries its own CRC and newline terminator, so a fault
    /// mid-batch leaves a durable *prefix* of the batch and recovery
    /// discards the torn tail. Callers must acknowledge ops only after
    /// this returns — then every acknowledged op is durable.
    pub fn append_batch(&mut self, ops: &[WalOp]) -> Result<(), PersistError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut buf = String::new();
        for op in ops {
            buf.push_str(&op.record());
        }
        let wal = wal_path(&self.dir, self.generation);
        self.vfs.append(&wal, buf.as_bytes())?;
        self.vfs.sync(&wal)?;
        self.wal_records += ops.len() as u64;
        Ok(())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// WAL records appended since the last checkpoint.
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }
}

/// Canonical, deterministic rendering of a database's full logical
/// state (collections, index definitions, documents). Two databases are
/// byte-identical for durability purposes iff their fingerprints match
/// — this is what the crash-matrix tests compare.
pub fn fingerprint(db: &Database) -> String {
    let mut out = String::new();
    for coll in db.collections() {
        let _ = writeln!(out, "collection {}", coll.name());
        let mut defs: Vec<_> = coll.indexes().iter().map(|ix| ix.definition()).collect();
        defs.sort_by_key(|d| d.id.0);
        for d in defs {
            let _ = writeln!(out, "index {} {} {}", d.id.0, d.data_type, d.pattern);
        }
        for (id, doc) in coll.documents() {
            let _ = writeln!(out, "doc {} {}", id.0, xia_xml::serialize(doc));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xia_durable_{name}_{}", std::process::id()));
        let _ = RealVfs.remove_dir_all(&dir);
        dir
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_collection("shop");
        for i in 0..3 {
            db.collection_mut("shop")
                .unwrap()
                .insert(Document::parse(&format!("<item><price>{i}</price></item>")).unwrap());
        }
        db
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn wal_ops_round_trip_through_records() {
        let ops = [
            WalOp::Insert {
                collection: "my shop".into(),
                xml: "<a b=\"1\">x % y\n</a>".into(),
            },
            WalOp::CreateIndex {
                collection: "shop".into(),
                id: 7,
                data_type: DataType::Double,
                pattern: "//item/price".into(),
            },
            WalOp::DropIndex {
                collection: "shop".into(),
                id: 7,
            },
            WalOp::CreateCollection {
                collection: "tenant coll".into(),
            },
        ];
        for op in &ops {
            let rec = op.record();
            assert!(rec.ends_with('\n'));
            let line = rec.trim_end();
            let (crc_hex, payload) = line.split_once(' ').unwrap();
            assert_eq!(
                u32::from_str_radix(crc_hex, 16).unwrap(),
                crc32(payload.as_bytes())
            );
            assert_eq!(WalOp::decode(payload).as_ref(), Some(op));
        }
    }

    #[test]
    fn checkpoint_then_recover_round_trips() {
        let dir = tmp("roundtrip");
        let db = sample_db();
        checkpoint_database(&RealVfs, &db, &dir).unwrap();
        let rec = recover_database(&RealVfs, &dir).unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(fingerprint(&rec.database), fingerprint(&db));
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_replay_reconstructs_mutations() {
        let dir = tmp("walreplay");
        let db = sample_db();
        let (mut store, _) = DurableStore::open(&dir, Arc::new(RealVfs)).unwrap();
        store.checkpoint(&db).unwrap();
        store
            .append(&WalOp::Insert {
                collection: "shop".into(),
                xml: "<item><price>99</price></item>".into(),
            })
            .unwrap();
        store
            .append(&WalOp::CreateIndex {
                collection: "shop".into(),
                id: 1,
                data_type: DataType::Double,
                pattern: "//item/price".into(),
            })
            .unwrap();
        assert_eq!(store.wal_records(), 2);

        let rec = recover_database(&RealVfs, &dir).unwrap();
        assert_eq!(rec.wal_records, 2);
        assert_eq!(rec.database.collection("shop").unwrap().len(), 4);
        assert_eq!(rec.database.collection("shop").unwrap().indexes().len(), 1);
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_discarded() {
        let dir = tmp("torntail");
        let db = sample_db();
        let (mut store, _) = DurableStore::open(&dir, Arc::new(RealVfs)).unwrap();
        store.checkpoint(&db).unwrap();
        store
            .append(&WalOp::DropIndex {
                collection: "shop".into(),
                id: 9,
            })
            .unwrap();
        // Simulate a torn append: half a record, no newline.
        let wal = wal_path(&dir, store.generation());
        RealVfs.append(&wal, b"deadbeef insert sh").unwrap();
        let rec = recover_database(&RealVfs, &dir).unwrap();
        assert_eq!(rec.wal_discarded, 2, "inapplicable drop + torn tail");
        assert_eq!(rec.database.collection("shop").unwrap().len(), 3);
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_generation_is_silently_discarded() {
        let dir = tmp("partial");
        let db = sample_db();
        checkpoint_database(&RealVfs, &db, &dir).unwrap();
        // A crashed checkpoint leaves a .tmp staging dir behind.
        let staged = dir.join("gen-000002.tmp");
        RealVfs.create_dir_all(&staged.join("shop")).unwrap();
        RealVfs
            .write(&staged.join("shop/manifest.txt"), b"collection shop\n")
            .unwrap();
        let rec = recover_database(&RealVfs, &dir).unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.discarded_generations, 1);
        assert!(!staged.exists(), "staging dir cleaned up");
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_generation_falls_back_to_older_one() {
        let dir = tmp("fallback");
        let db = sample_db();
        let mut db2 = sample_db();
        db2.collection_mut("shop")
            .unwrap()
            .insert(Document::parse("<item><price>4</price></item>").unwrap());
        // Build gen 2 first, then gen 1 (prune only removes *older*
        // generations, so both stay on disk).
        checkpoint_at(&RealVfs, &db2, &dir, 2).unwrap();
        checkpoint_at(&RealVfs, &db, &dir, 1).unwrap();
        // Corrupt a document inside gen 2: its checksum now fails and
        // recovery must fall back to gen 1, not hand back corruption.
        RealVfs
            .write(&dir.join("gen-000002/shop/docs/000000.xml"), b"<mangled/>")
            .unwrap();
        let rec = recover_database(&RealVfs, &dir).unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(fingerprint(&rec.database), fingerprint(&db));
        assert_eq!(rec.discarded_generations, 1);

        // With no generation left intact, recovery refuses outright.
        RealVfs.remove_dir_all(&dir.join("gen-000001")).unwrap();
        RealVfs.remove_file(&wal_path(&dir, 1)).unwrap();
        assert!(recover_database(&RealVfs, &dir).is_err());
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_empty_dir_yields_empty_database() {
        let dir = tmp("empty");
        RealVfs.create_dir_all(&dir).unwrap();
        let rec = recover_database(&RealVfs, &dir).unwrap();
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.database.collections().count(), 0);
        RealVfs.remove_dir_all(&dir).ok();
    }
}
