//! Path dictionary and per-path value statistics.
//!
//! DB2 pureXML keeps a *path table*: one row per distinct root-to-node
//! label path in a collection. We reproduce that as [`CollectionStats`]:
//! each distinct label path gets a [`PathId`] and a [`PathStats`] record
//! with node counts, numeric-parse counts, value length sums, and a value
//! distribution ([`ValueDist`]) that is exact up to a cap and collapses to
//! equi-depth histograms beyond it.
//!
//! Everything the optimizer asks ("how many nodes match pattern P", "what
//! fraction of //item/price values exceed 100", "how many bytes would an
//! index on P occupy") is answered here by matching the pattern against
//! dictionary paths and aggregating.

use std::collections::{BTreeMap, HashMap};
use xia_index::DataType;
use xia_xml::{Document, NodeId, NodeKind};
use xia_xpath::{CmpOp, LinearPath, Literal};

/// Identifier of a distinct label path within one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

/// Distinct values kept exactly until this cap, then collapsed.
const EXACT_CAP: usize = 8192;
/// Number of equi-depth buckets after collapsing.
const HIST_BUCKETS: usize = 64;

/// Total-ordered f64 wrapper (NaNs are filtered out before insertion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("NaN filtered on insert")
    }
}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Equi-depth histogram over an ordered domain `T`.
#[derive(Debug, Clone)]
pub struct EquiDepth<T> {
    /// Upper bounds of each bucket (ascending); the last equals the max.
    bounds: Vec<T>,
    /// Occurrences per bucket.
    counts: Vec<u64>,
    total: u64,
    distinct: u64,
}

impl<T: Ord + Clone> EquiDepth<T> {
    fn from_exact(map: &BTreeMap<T, u32>) -> EquiDepth<T> {
        let total: u64 = map.values().map(|&c| u64::from(c)).sum();
        let distinct = map.len() as u64;
        let per_bucket = (total / HIST_BUCKETS as u64).max(1);
        let mut bounds = Vec::with_capacity(HIST_BUCKETS);
        let mut counts = Vec::with_capacity(HIST_BUCKETS);
        let mut acc = 0u64;
        for (value, &c) in map {
            acc += u64::from(c);
            if acc >= per_bucket {
                bounds.push(value.clone());
                counts.push(acc);
                acc = 0;
            }
        }
        if acc > 0 {
            if let Some(last) = map.keys().next_back() {
                bounds.push(last.clone());
                counts.push(acc);
            }
        }
        EquiDepth {
            bounds,
            counts,
            total,
            distinct,
        }
    }

    fn add(&mut self, value: &T) {
        // Find the first bucket whose bound >= value; overflow goes to the
        // last bucket (and stretches its bound).
        let idx = self.bounds.partition_point(|b| b < value);
        let idx = idx.min(self.counts.len().saturating_sub(1));
        if self.counts.is_empty() {
            self.bounds.push(value.clone());
            self.counts.push(0);
        }
        if let Some(last) = self.bounds.last_mut() {
            if *last < *value {
                *last = value.clone();
            }
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    fn remove(&mut self, value: &T) {
        let idx = self.bounds.partition_point(|b| b < value);
        let idx = idx.min(self.counts.len().saturating_sub(1));
        if !self.counts.is_empty() && self.counts[idx] > 0 {
            self.counts[idx] -= 1;
            self.total -= 1;
        }
    }

    /// Fraction of occurrences `op literal` selects.
    fn selectivity(&self, op: CmpOp, value: &T) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        match op {
            CmpOp::Eq => (total / self.distinct.max(1) as f64 / total).min(1.0),
            CmpOp::Ne => 1.0 - (1.0 / self.distinct.max(1) as f64),
            CmpOp::Lt | CmpOp::Le => {
                let below: u64 = self
                    .bounds
                    .iter()
                    .zip(&self.counts)
                    .take_while(|(b, _)| *b < value)
                    .map(|(_, &c)| c)
                    .sum();
                // Half the boundary bucket, a standard interpolation.
                let boundary = self
                    .bounds
                    .iter()
                    .position(|b| b >= value)
                    .map_or(0, |i| self.counts[i] / 2);
                ((below + boundary) as f64 / total).min(1.0)
            }
            CmpOp::Gt | CmpOp::Ge => 1.0 - self.selectivity(CmpOp::Lt, value),
            // Histogram boundaries cannot answer substring questions; use
            // the standard constant guesses (prefix match acts like a
            // narrow range, substring like a broad one).
            CmpOp::StartsWith => (5.0 / self.distinct.max(1) as f64).min(1.0),
            CmpOp::Contains => 0.1,
        }
    }
}

/// Value distribution of one path: exact while small, histogram beyond.
#[derive(Debug, Clone)]
pub enum ValueDist {
    Exact {
        strings: BTreeMap<Box<str>, u32>,
        numbers: BTreeMap<OrdF64, u32>,
    },
    Collapsed {
        strings: EquiDepth<Box<str>>,
        numbers: EquiDepth<OrdF64>,
    },
}

impl Default for ValueDist {
    fn default() -> Self {
        ValueDist::Exact {
            strings: BTreeMap::new(),
            numbers: BTreeMap::new(),
        }
    }
}

impl ValueDist {
    fn add(&mut self, value: &str) {
        let num = value.trim().parse::<f64>().ok().filter(|n| !n.is_nan());
        match self {
            ValueDist::Exact { strings, numbers } => {
                *strings.entry(value.into()).or_insert(0) += 1;
                if let Some(n) = num {
                    *numbers.entry(OrdF64(n)).or_insert(0) += 1;
                }
                if strings.len() > EXACT_CAP {
                    *self = ValueDist::Collapsed {
                        strings: EquiDepth::from_exact(strings),
                        numbers: EquiDepth::from_exact(numbers),
                    };
                }
            }
            ValueDist::Collapsed { strings, numbers } => {
                strings.add(&Box::from(value));
                if let Some(n) = num {
                    numbers.add(&OrdF64(n));
                }
            }
        }
    }

    fn remove(&mut self, value: &str) {
        let num = value.trim().parse::<f64>().ok().filter(|n| !n.is_nan());
        match self {
            ValueDist::Exact { strings, numbers } => {
                if let Some(c) = strings.get_mut(value) {
                    *c -= 1;
                    if *c == 0 {
                        strings.remove(value);
                    }
                }
                if let Some(n) = num {
                    if let Some(c) = numbers.get_mut(&OrdF64(n)) {
                        *c -= 1;
                        if *c == 0 {
                            numbers.remove(&OrdF64(n));
                        }
                    }
                }
            }
            ValueDist::Collapsed { strings, numbers } => {
                strings.remove(&Box::from(value));
                if let Some(n) = num {
                    numbers.remove(&OrdF64(n));
                }
            }
        }
    }

    /// Distinct value count (exact or histogram-tracked).
    pub fn distinct(&self, ty: DataType) -> u64 {
        match (self, ty) {
            (ValueDist::Exact { strings, .. }, DataType::Varchar) => strings.len() as u64,
            (ValueDist::Exact { numbers, .. }, DataType::Double) => numbers.len() as u64,
            (ValueDist::Collapsed { strings, .. }, DataType::Varchar) => strings.distinct,
            (ValueDist::Collapsed { numbers, .. }, DataType::Double) => numbers.distinct,
        }
    }

    /// Number of numerically-typed occurrences.
    pub fn numeric_total(&self) -> u64 {
        match self {
            ValueDist::Exact { numbers, .. } => numbers.values().map(|&c| u64::from(c)).sum(),
            ValueDist::Collapsed { numbers, .. } => numbers.total,
        }
    }

    /// Selectivity of `op literal` among this path's occurrences.
    pub fn selectivity(&self, op: CmpOp, lit: &Literal, total: u64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        // String functions are only defined on string literals; a numeric
        // literal can only arise from programmatic (non-parser) queries —
        // treat it as selecting nothing rather than panicking downstream.
        if op.is_string_function() && matches!(lit, Literal::Num(_)) {
            return 0.0;
        }
        match (self, lit) {
            (ValueDist::Exact { numbers, .. }, Literal::Num(v)) => {
                exact_selectivity(numbers, op, &OrdF64(*v), total)
            }
            (ValueDist::Exact { strings, .. }, Literal::Str(s)) => {
                if op == CmpOp::StartsWith {
                    // Exact prefix count over the ordered value map.
                    let hits: u64 = strings
                        .range(Box::<str>::from(s.as_str())..)
                        .take_while(|(k, _)| k.starts_with(s.as_str()))
                        .map(|(_, &c)| u64::from(c))
                        .sum();
                    return (hits as f64 / total as f64).min(1.0);
                }
                if op == CmpOp::Contains {
                    let hits: u64 = strings
                        .iter()
                        .filter(|(k, _)| k.contains(s.as_str()))
                        .map(|(_, &c)| u64::from(c))
                        .sum();
                    return (hits as f64 / total as f64).min(1.0);
                }
                exact_selectivity(strings, op, &Box::from(s.as_str()), total)
            }
            (ValueDist::Collapsed { numbers, .. }, Literal::Num(v)) => {
                numbers.selectivity(op, &OrdF64(*v))
            }
            (ValueDist::Collapsed { strings, .. }, Literal::Str(s)) => {
                strings.selectivity(op, &Box::from(s.as_str()))
            }
        }
    }
}

fn exact_selectivity<T: Ord>(map: &BTreeMap<T, u32>, op: CmpOp, v: &T, total: u64) -> f64 {
    let total = total as f64;
    let count: u64 = match op {
        CmpOp::StartsWith | CmpOp::Contains => {
            unreachable!("string functions are handled before exact_selectivity")
        }
        CmpOp::Eq => map.get(v).copied().map_or(0, u64::from),
        CmpOp::Ne => {
            let eq = map.get(v).copied().map_or(0, u64::from);
            map.values().map(|&c| u64::from(c)).sum::<u64>() - eq
        }
        CmpOp::Lt => map.range(..v).map(|(_, &c)| u64::from(c)).sum(),
        CmpOp::Le => map.range(..=v).map(|(_, &c)| u64::from(c)).sum(),
        CmpOp::Gt => map
            .range((std::ops::Bound::Excluded(v), std::ops::Bound::Unbounded))
            .map(|(_, &c)| u64::from(c))
            .sum(),
        CmpOp::Ge => map.range(v..).map(|(_, &c)| u64::from(c)).sum(),
    };
    (count as f64 / total).min(1.0)
}

/// Statistics of one distinct label path.
#[derive(Debug, Clone, Default)]
pub struct PathStats {
    /// Total node occurrences of this path.
    pub count: u64,
    /// Sum of value byte lengths (for index size estimation).
    pub byte_len_sum: u64,
    /// Value distribution.
    pub values: ValueDist,
}

/// One dictionary entry: the concrete label path itself plus stats.
#[derive(Debug, Clone)]
pub struct PathEntry {
    pub labels: Vec<Box<str>>,
    pub is_attribute: bool,
    pub stats: PathStats,
}

/// Dictionary key: the label path plus its attribute-leaf flag.
type PathKey = (Box<[Box<str>]>, bool);

/// The path dictionary + statistics for one collection.
#[derive(Debug, Default, Clone)]
pub struct CollectionStats {
    entries: Vec<PathEntry>,
    lookup: HashMap<PathKey, PathId>,
    /// Total element+attribute nodes across documents.
    pub total_nodes: u64,
    /// Total document bytes (page accounting input).
    pub total_bytes: u64,
    /// Number of live documents.
    pub doc_count: u64,
}

impl CollectionStats {
    pub fn new() -> CollectionStats {
        CollectionStats::default()
    }

    /// Register a document's nodes into the dictionary.
    pub fn add_document(&mut self, doc: &Document) {
        self.apply_document(doc, true);
        self.total_bytes += doc.byte_size() as u64;
        self.doc_count += 1;
    }

    /// Remove a document's contribution (document deletion).
    pub fn remove_document(&mut self, doc: &Document) {
        self.apply_document(doc, false);
        self.total_bytes = self.total_bytes.saturating_sub(doc.byte_size() as u64);
        self.doc_count = self.doc_count.saturating_sub(1);
    }

    fn apply_document(&mut self, doc: &Document, add: bool) {
        let Some(root) = doc.root_element() else {
            return;
        };
        // Reusable label stack mirroring the current ancestor chain.
        let mut stack: Vec<Box<str>> = Vec::new();
        self.visit(doc, root, &mut stack, add);
    }

    fn visit(&mut self, doc: &Document, node: NodeId, stack: &mut Vec<Box<str>>, add: bool) {
        stack.push(doc.name(node).into());
        let value = doc.string_value(node);
        self.touch(stack, doc.kind(node) == NodeKind::Attribute, &value, add);
        if doc.kind(node) == NodeKind::Element {
            for a in doc.attributes(node) {
                stack.push(doc.name(a).into());
                let v = doc.value(a).unwrap_or("");
                self.touch(stack, true, v, add);
                stack.pop();
            }
            for c in doc.child_elements(node) {
                self.visit(doc, c, stack, add);
            }
        }
        stack.pop();
    }

    fn touch(&mut self, labels: &[Box<str>], is_attr: bool, value: &str, add: bool) {
        let key = (labels.to_vec().into_boxed_slice(), is_attr);
        let id = match self.lookup.get(&key) {
            Some(&id) => id,
            None => {
                let id = PathId(self.entries.len() as u32);
                self.entries.push(PathEntry {
                    labels: labels.to_vec(),
                    is_attribute: is_attr,
                    stats: PathStats::default(),
                });
                self.lookup.insert(key, id);
                id
            }
        };
        let stats = &mut self.entries[id.0 as usize].stats;
        if add {
            stats.count += 1;
            stats.byte_len_sum += value.len() as u64;
            stats.values.add(value);
            self.total_nodes += 1;
        } else {
            stats.count = stats.count.saturating_sub(1);
            stats.byte_len_sum = stats.byte_len_sum.saturating_sub(value.len() as u64);
            stats.values.remove(value);
            self.total_nodes = self.total_nodes.saturating_sub(1);
        }
    }

    /// Number of distinct label paths.
    pub fn path_count(&self) -> usize {
        self.entries.len()
    }

    /// Total element/attribute nodes across all documents (the cost of
    /// one full navigational traversal).
    pub fn total_nodes(&self) -> u64 {
        self.total_nodes
    }

    /// All entries (for inspection/demo output).
    pub fn entries(&self) -> &[PathEntry] {
        &self.entries
    }

    /// Data pages occupied by the collection's documents.
    pub fn data_pages(&self) -> u64 {
        (self.total_bytes / crate::PAGE_SIZE as u64).max(1)
    }

    /// Dictionary paths matched by a pattern.
    pub fn paths_matching(&self, pattern: &LinearPath) -> Vec<PathId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                let labels: Vec<&str> = e.labels.iter().map(|l| &**l).collect();
                pattern.matches_label_path(&labels, e.is_attribute)
            })
            .map(|(i, _)| PathId(i as u32))
            .collect()
    }

    /// Number of nodes a pattern reaches.
    pub fn count_matching(&self, pattern: &LinearPath) -> u64 {
        self.paths_matching(pattern)
            .iter()
            .map(|&p| self.entries[p.0 as usize].stats.count)
            .sum()
    }

    /// Number of entries a (virtual) index on `pattern` would hold —
    /// DOUBLE indexes skip non-numeric values.
    pub fn estimated_index_entries(&self, pattern: &LinearPath, ty: DataType) -> u64 {
        self.paths_matching(pattern)
            .iter()
            .map(|&p| {
                let s = &self.entries[p.0 as usize].stats;
                match ty {
                    DataType::Varchar => s.count,
                    DataType::Double => s.values.numeric_total(),
                }
            })
            .sum()
    }

    /// Estimated byte size of a (virtual) index on `pattern`, using the
    /// same per-entry model as the physical index layer so virtual and
    /// actual sizes are comparable.
    pub fn estimated_index_bytes(&self, pattern: &LinearPath, ty: DataType) -> u64 {
        const ENTRY_OVERHEAD: u64 = 12;
        self.paths_matching(pattern)
            .iter()
            .map(|&p| {
                let s = &self.entries[p.0 as usize].stats;
                match ty {
                    DataType::Varchar => {
                        let avg = s.byte_len_sum.checked_div(s.count).unwrap_or(0);
                        s.count * (avg.min(64) + ENTRY_OVERHEAD)
                    }
                    DataType::Double => s.values.numeric_total() * (8 + ENTRY_OVERHEAD),
                }
            })
            .sum()
    }

    /// Estimated pages of a (virtual) index on `pattern`.
    pub fn estimated_index_pages(&self, pattern: &LinearPath, ty: DataType) -> u64 {
        self.estimated_index_bytes(pattern, ty)
            .div_ceil(crate::PAGE_SIZE as u64)
            .max(1)
    }

    /// Selectivity of `op literal` among nodes matching `pattern`
    /// (occurrence-weighted across matching dictionary paths).
    pub fn selectivity(&self, pattern: &LinearPath, op: CmpOp, lit: &Literal) -> f64 {
        let paths = self.paths_matching(pattern);
        let total: u64 = paths
            .iter()
            .map(|&p| self.entries[p.0 as usize].stats.count)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let mut selected = 0.0;
        for &p in &paths {
            let s = &self.entries[p.0 as usize].stats;
            selected += s.values.selectivity(op, lit, s.count) * s.count as f64;
        }
        (selected / total as f64).clamp(0.0, 1.0)
    }

    /// Distinct values among nodes matching `pattern` (summed across
    /// paths; an upper bound since paths may share values).
    pub fn distinct_matching(&self, pattern: &LinearPath, ty: DataType) -> u64 {
        self.paths_matching(pattern)
            .iter()
            .map(|&p| self.entries[p.0 as usize].stats.values.distinct(ty))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_xml::Document;

    fn stats() -> CollectionStats {
        let mut s = CollectionStats::new();
        for xml in [
            r#"<site><item id="i1"><price>10</price><name>mask</name></item></site>"#,
            r#"<site><item id="i2"><price>25</price><name>drum</name></item><item id="i3"><price>40</price></item></site>"#,
        ] {
            s.add_document(&Document::parse(xml).unwrap());
        }
        s
    }

    fn lp(s: &str) -> LinearPath {
        LinearPath::parse(s).unwrap()
    }

    #[test]
    fn dictionary_has_one_entry_per_distinct_path() {
        let s = stats();
        // site, site/item, site/item/@id, site/item/price, site/item/name
        assert_eq!(s.path_count(), 5);
        assert_eq!(s.doc_count, 2);
    }

    #[test]
    fn count_matching_concrete_and_general() {
        let s = stats();
        assert_eq!(s.count_matching(&lp("/site/item/price")), 3);
        assert_eq!(s.count_matching(&lp("//price")), 3);
        assert_eq!(s.count_matching(&lp("//item")), 3);
        assert_eq!(s.count_matching(&lp("/site/item/*")), 5); // 3 price + 2 name
        assert_eq!(s.count_matching(&lp("//item/@id")), 3);
        assert_eq!(s.count_matching(&lp("//nothing")), 0);
    }

    #[test]
    fn star_counts_elements_not_attributes() {
        let s = stats();
        // Elements: 2 site + 3 item + 3 price + 2 name = 10.
        assert_eq!(s.count_matching(&LinearPath::any()), 10);
        assert_eq!(s.count_matching(&lp("//*/@*")), 3);
    }

    #[test]
    fn index_entry_estimation_respects_type() {
        let s = stats();
        assert_eq!(
            s.estimated_index_entries(&lp("//price"), DataType::Double),
            3
        );
        assert_eq!(
            s.estimated_index_entries(&lp("//name"), DataType::Double),
            0
        );
        assert_eq!(
            s.estimated_index_entries(&lp("//name"), DataType::Varchar),
            2
        );
    }

    #[test]
    fn selectivity_equality_and_range() {
        let s = stats();
        let sel = s.selectivity(&lp("//price"), CmpOp::Gt, &Literal::Num(20.0));
        assert!((sel - 2.0 / 3.0).abs() < 1e-9, "got {sel}");
        let sel = s.selectivity(&lp("//price"), CmpOp::Eq, &Literal::Num(10.0));
        assert!((sel - 1.0 / 3.0).abs() < 1e-9, "got {sel}");
        let sel = s.selectivity(&lp("//name"), CmpOp::Eq, &Literal::Str("drum".into()));
        assert!((sel - 0.5).abs() < 1e-9, "got {sel}");
        let sel = s.selectivity(&lp("//price"), CmpOp::Lt, &Literal::Num(5.0));
        assert_eq!(sel, 0.0);
    }

    #[test]
    fn removal_restores_counts() {
        let mut s = stats();
        let doc = Document::parse(
            r#"<site><item id="i2"><price>25</price><name>drum</name></item><item id="i3"><price>40</price></item></site>"#,
        )
        .unwrap();
        s.remove_document(&doc);
        assert_eq!(s.doc_count, 1);
        assert_eq!(s.count_matching(&lp("//price")), 1);
        let sel = s.selectivity(&lp("//price"), CmpOp::Eq, &Literal::Num(10.0));
        assert!((sel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn byte_and_page_accounting() {
        let s = stats();
        assert!(s.total_bytes > 0);
        assert!(s.data_pages() >= 1);
        assert!(s.estimated_index_bytes(&lp("//price"), DataType::Double) > 0);
        assert_eq!(
            s.estimated_index_pages(&lp("//nothing"), DataType::Double),
            1
        );
    }

    #[test]
    fn distinct_counting() {
        let s = stats();
        assert_eq!(s.distinct_matching(&lp("//price"), DataType::Double), 3);
        assert_eq!(s.distinct_matching(&lp("//name"), DataType::Varchar), 2);
    }

    #[test]
    fn string_function_selectivities() {
        let s = stats();
        // names: mask, drum — starts-with("m") hits 1 of 2.
        let sel = s.selectivity(&lp("//name"), CmpOp::StartsWith, &Literal::Str("m".into()));
        assert!((sel - 0.5).abs() < 1e-9, "{sel}");
        let sel = s.selectivity(&lp("//name"), CmpOp::Contains, &Literal::Str("ru".into()));
        assert!((sel - 0.5).abs() < 1e-9, "{sel}");
        let sel = s.selectivity(&lp("//name"), CmpOp::StartsWith, &Literal::Str("zz".into()));
        assert_eq!(sel, 0.0);
    }

    #[test]
    fn ne_selectivity_is_complement_of_eq() {
        let s = stats();
        let eq = s.selectivity(&lp("//price"), CmpOp::Eq, &Literal::Num(25.0));
        let ne = s.selectivity(&lp("//price"), CmpOp::Ne, &Literal::Num(25.0));
        assert!((eq + ne - 1.0).abs() < 1e-9, "eq {eq} + ne {ne} != 1");
    }

    #[test]
    fn selectivity_bounds_are_respected() {
        let s = stats();
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for v in [-1e9, 0.0, 10.0, 25.0, 1e9] {
                let sel = s.selectivity(&lp("//price"), op, &Literal::Num(v));
                assert!((0.0..=1.0).contains(&sel), "{op:?} {v}: {sel}");
            }
        }
    }

    #[test]
    fn histogram_removal_after_collapse_stays_consistent() {
        let mut s = CollectionStats::new();
        let n: usize = super::EXACT_CAP + 100;
        let mut b = xia_xml::DocumentBuilder::with_capacity(2 * n + 1);
        b.open("r");
        for i in 0..n {
            b.leaf("v", &format!("{i}"));
        }
        b.close();
        let doc = b.finish().unwrap();
        s.add_document(&doc);
        assert_eq!(s.count_matching(&lp("/r/v")), n as u64);
        s.remove_document(&doc);
        assert_eq!(s.count_matching(&lp("/r/v")), 0);
        assert_eq!(s.doc_count, 0);
    }

    #[test]
    fn estimated_pages_scale_with_entries() {
        let s = stats();
        let small = s.estimated_index_pages(&lp("//name"), DataType::Varchar);
        let mut big_stats = CollectionStats::new();
        let mut b = xia_xml::DocumentBuilder::new();
        b.open("r");
        for i in 0..2000 {
            b.leaf("name", &format!("value-{i:06}"));
        }
        b.close();
        big_stats.add_document(&b.finish().unwrap());
        let big = big_stats.estimated_index_pages(&lp("//name"), DataType::Varchar);
        assert!(big > small, "{big} vs {small}");
    }

    #[test]
    fn collapse_to_histogram_keeps_reasonable_selectivity() {
        let mut s = CollectionStats::new();
        // One path with 3 * EXACT_CAP occurrences of distinct values.
        let n: usize = 3 * super::EXACT_CAP / 2;
        let mut b = xia_xml::DocumentBuilder::with_capacity(2 * n + 1);
        b.open("r");
        for i in 0..n {
            b.leaf("v", &format!("{i}"));
        }
        b.close();
        s.add_document(&b.finish().unwrap());
        let sel = s.selectivity(&lp("/r/v"), CmpOp::Lt, &Literal::Num(n as f64 / 2.0));
        assert!(
            (sel - 0.5).abs() < 0.1,
            "histogram selectivity {sel} should be ~0.5"
        );
        let d = s.distinct_matching(&lp("/r/v"), DataType::Double);
        assert!(d > 0);
    }
}
