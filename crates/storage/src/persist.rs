//! Disk persistence: save/load collections and databases as snapshots.
//!
//! Layout (one directory per collection):
//!
//! ```text
//! <dir>/manifest.txt       # name, doc count, index DDL lines
//! <dir>/docs/000000.xml    # one file per live document
//! ```
//!
//! Documents are stored as plain XML (the round-trippable serialization
//! from `xia-xml`); indexes are stored as definitions and rebuilt on
//! load. Loading compacts document ids (dead slots are not persisted).
//!
//! `save_collection`/`load_collection` are **primitives**: they write
//! into the directory they are given with no atomicity of their own.
//! Crash safety comes from the layer above — [`crate::durable`] stages
//! a whole database snapshot in a `gen-<n>.tmp` directory and commits
//! it with one atomic rename, which is what [`save_database`] and
//! [`load_database`] use. Every byte goes through the injectable
//! [`Vfs`], so the crash-matrix tests can fault any individual step.

use crate::collection::Collection;
use crate::database::Database;
use crate::vfs::{RealVfs, Vfs};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use xia_index::{DataType, IndexDefinition, IndexId};
use xia_xml::Document;
use xia_xpath::LinearPath;

/// Errors raised by snapshot save/load.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    /// A document file failed to parse.
    BadDocument {
        file: String,
        error: String,
    },
    /// The manifest is missing or malformed.
    BadManifest(String),
    /// A collection subdirectory failed to load; `dir` names the
    /// subdirectory so a partial snapshot can be diagnosed directly.
    Collection {
        dir: String,
        source: Box<PersistError>,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadDocument { file, error } => {
                write!(f, "document {file} failed to parse: {error}")
            }
            PersistError::BadManifest(msg) => write!(f, "bad manifest: {msg}"),
            PersistError::Collection { dir, source } => {
                write!(f, "collection snapshot {dir}: {source}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Collection { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

pub(crate) const MANIFEST: &str = "manifest.txt";
const DOCS_DIR: &str = "docs";

/// Save a collection snapshot into `dir` (created if absent; existing
/// snapshot files are replaced). Not atomic on its own — callers that
/// need crash safety stage into a fresh directory and commit with a
/// rename (see [`crate::durable`]).
pub fn save_collection(coll: &Collection, dir: &Path) -> Result<(), PersistError> {
    save_collection_with(&RealVfs, coll, dir)
}

/// [`save_collection`] over an explicit [`Vfs`].
pub fn save_collection_with(
    vfs: &dyn Vfs,
    coll: &Collection,
    dir: &Path,
) -> Result<(), PersistError> {
    let docs_dir = dir.join(DOCS_DIR);
    if vfs.exists(&docs_dir) {
        vfs.remove_dir_all(&docs_dir)?;
    }
    vfs.create_dir_all(&docs_dir)?;

    let mut manifest = String::new();
    let _ = writeln!(manifest, "collection {}", coll.name());
    for ix in coll.indexes() {
        let def = ix.definition();
        let _ = writeln!(
            manifest,
            "index {} {} {}",
            def.id.0, def.data_type, def.pattern
        );
    }
    let mut count = 0usize;
    for (_, doc) in coll.documents() {
        let file = docs_dir.join(format!("{count:06}.xml"));
        vfs.write(&file, xia_xml::serialize(doc).as_bytes())?;
        count += 1;
    }
    let _ = writeln!(manifest, "documents {count}");
    vfs.write(&dir.join(MANIFEST), manifest.as_bytes())?;
    Ok(())
}

/// Load a collection snapshot from `dir`. Document ids are compacted to
/// `0..n` in saved order; statistics and indexes are rebuilt.
pub fn load_collection(dir: &Path) -> Result<Collection, PersistError> {
    load_collection_with(&RealVfs, dir)
}

/// [`load_collection`] over an explicit [`Vfs`].
pub fn load_collection_with(vfs: &dyn Vfs, dir: &Path) -> Result<Collection, PersistError> {
    let manifest = vfs
        .read_to_string(&dir.join(MANIFEST))
        .map_err(|e| PersistError::BadManifest(format!("{}: {e}", dir.display())))?;
    let mut name = None;
    let mut expected_docs: Option<usize> = None;
    let mut index_defs: Vec<IndexDefinition> = Vec::new();
    for line in manifest.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "collection" => name = Some(rest.to_string()),
            "index" => {
                let mut parts = rest.splitn(3, ' ');
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| PersistError::BadManifest(format!("index line: {line}")))?;
                let ty = match parts.next() {
                    Some("VARCHAR") => DataType::Varchar,
                    Some("DOUBLE") => DataType::Double,
                    other => {
                        return Err(PersistError::BadManifest(format!(
                            "unknown index type {other:?}"
                        )))
                    }
                };
                let pattern = parts
                    .next()
                    .ok_or_else(|| PersistError::BadManifest(format!("index line: {line}")))?;
                let pattern = LinearPath::parse(pattern)
                    .map_err(|e| PersistError::BadManifest(format!("pattern: {e}")))?;
                index_defs.push(IndexDefinition::new(IndexId(id), pattern, ty));
            }
            "documents" => {
                expected_docs = rest.trim().parse::<usize>().ok();
            }
            other => {
                return Err(PersistError::BadManifest(format!(
                    "unknown line kind {other:?}"
                )))
            }
        }
    }
    let name = name.ok_or_else(|| PersistError::BadManifest("missing collection name".into()))?;

    let mut coll = Collection::new(name);
    let docs_dir = dir.join(DOCS_DIR);
    let mut files: Vec<_> = vfs
        .read_dir(&docs_dir)?
        .into_iter()
        .filter(|p| p.extension().is_some_and(|x| x == "xml"))
        .collect();
    files.sort();
    for file in files {
        let text = vfs.read_to_string(&file)?;
        let doc = Document::parse(&text).map_err(|e| PersistError::BadDocument {
            file: file.display().to_string(),
            error: e.to_string(),
        })?;
        coll.insert(doc);
    }
    if let Some(expected) = expected_docs {
        if coll.len() != expected {
            return Err(PersistError::BadManifest(format!(
                "snapshot has {} document files but the manifest recorded {expected} \
                 (partial copy or interrupted save?)",
                coll.len()
            )));
        }
    }
    for def in index_defs {
        coll.create_index(def);
    }
    Ok(coll)
}

/// Save `db` as a crash-safe snapshot under `dir`.
///
/// The snapshot is **generational**: the whole database is staged into
/// `gen-<n>.tmp/`, checksummed, fsync'd, and committed with one atomic
/// rename to `gen-<n>/`. A crash at any point leaves either the
/// previous generation or the new one — never a torn mix (pinned by
/// `tests/crash_matrix.rs`). Older generations are pruned after the new
/// one is durable.
pub fn save_database(db: &Database, dir: &Path) -> Result<(), PersistError> {
    save_database_with(&RealVfs, db, dir)
}

/// [`save_database`] over an explicit [`Vfs`].
pub fn save_database_with(vfs: &dyn Vfs, db: &Database, dir: &Path) -> Result<(), PersistError> {
    crate::durable::checkpoint_database(vfs, db, dir)
}

/// Load a database saved by [`save_database`]: the newest *complete*
/// generation is loaded and the operation WAL (if any) replayed over
/// it; partial generations and torn WAL tails are discarded.
///
/// Pre-generational flat snapshots (every subdirectory with a manifest
/// is a collection) still load, so old snapshot directories and
/// hand-assembled ones keep working.
pub fn load_database(dir: &Path) -> Result<Database, PersistError> {
    load_database_with(&RealVfs, dir)
}

/// [`load_database`] over an explicit [`Vfs`].
pub fn load_database_with(vfs: &dyn Vfs, dir: &Path) -> Result<Database, PersistError> {
    Ok(crate::durable::recover_database(vfs, dir)?.database)
}

/// Load the legacy flat layout: every subdirectory of `dir` holding a
/// manifest becomes a collection. Errors name the failing subdirectory.
pub(crate) fn load_database_flat(vfs: &dyn Vfs, dir: &Path) -> Result<Database, PersistError> {
    let mut db = Database::new();
    let mut subdirs: Vec<_> = vfs
        .read_dir(dir)?
        .into_iter()
        .filter(|p| vfs.is_dir(p) && vfs.exists(&p.join(MANIFEST)))
        .collect();
    subdirs.sort();
    for sub in subdirs {
        let coll = load_collection_with(vfs, &sub).map_err(|e| PersistError::Collection {
            dir: sub.display().to_string(),
            source: Box::new(e),
        })?;
        let name = coll.name().to_string();
        db.create_collection(&name);
        *db.collection_mut(&name).expect("just created") = coll;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_xml::Document;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xia_persist_{name}_{}", std::process::id()));
        let _ = RealVfs.remove_dir_all(&dir);
        dir
    }

    fn sample_collection() -> Collection {
        let mut c = Collection::new("shop");
        for i in 0..5 {
            let xml = format!(
                r#"<shop><item id="i{i}"><price>{}</price><note>a &amp; b</note></item></shop>"#,
                i * 10
            );
            c.insert(Document::parse(&xml).unwrap());
        }
        c.create_index(IndexDefinition::new(
            IndexId(3),
            LinearPath::parse("//item/price").unwrap(),
            DataType::Double,
        ));
        c
    }

    #[test]
    fn collection_round_trip() {
        let dir = tmp("coll");
        let orig = sample_collection();
        save_collection(&orig, &dir).unwrap();
        let loaded = load_collection(&dir).unwrap();

        assert_eq!(loaded.name(), "shop");
        assert_eq!(loaded.len(), orig.len());
        // Documents byte-identical in saved order.
        for ((_, a), (_, b)) in orig.documents().zip(loaded.documents()) {
            assert_eq!(xia_xml::serialize(a), xia_xml::serialize(b));
        }
        // Index rebuilt with same definition and contents.
        let ix = loaded.index(IndexId(3)).expect("index restored");
        assert_eq!(ix.definition().pattern.to_string(), "//item/price");
        assert_eq!(ix.len(), orig.index(IndexId(3)).unwrap().len());
        // Statistics rebuilt.
        let p = LinearPath::parse("//item/price").unwrap();
        assert_eq!(
            loaded.stats().count_matching(&p),
            orig.stats().count_matching(&p)
        );
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_documents_are_compacted() {
        let dir = tmp("compact");
        let mut orig = sample_collection();
        orig.delete(crate::DocId(1)).unwrap();
        orig.delete(crate::DocId(3)).unwrap();
        save_collection(&orig, &dir).unwrap();
        let loaded = load_collection(&dir).unwrap();
        assert_eq!(loaded.len(), 3);
        let ids: Vec<u32> = loaded.documents().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2], "ids compacted");
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn database_round_trip() {
        let dir = tmp("db");
        let mut db = Database::new();
        db.create_collection("a");
        db.collection_mut("a")
            .unwrap()
            .insert(Document::parse("<x><y>1</y></x>").unwrap());
        db.create_collection("b");
        db.collection_mut("b")
            .unwrap()
            .insert(Document::parse("<z/>").unwrap());
        save_database(&db, &dir).unwrap();
        let loaded = load_database(&dir).unwrap();
        assert_eq!(loaded.collections().count(), 2);
        assert_eq!(loaded.collection("a").unwrap().len(), 1);
        assert_eq!(loaded.collection("b").unwrap().len(), 1);
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmp("missing");
        RealVfs.create_dir_all(&dir).unwrap();
        let err = load_collection(&dir).unwrap_err();
        assert!(matches!(err, PersistError::BadManifest(_)));
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_document_is_reported() {
        let dir = tmp("corrupt");
        save_collection(&sample_collection(), &dir).unwrap();
        RealVfs
            .write(&dir.join("docs/000002.xml"), b"<broken>")
            .unwrap();
        let err = load_collection(&dir).unwrap_err();
        assert!(matches!(err, PersistError::BadDocument { .. }), "{err}");
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_document_file_is_detected() {
        let dir = tmp("count");
        save_collection(&sample_collection(), &dir).unwrap();
        RealVfs.remove_file(&dir.join("docs/000004.xml")).unwrap();
        let err = load_collection(&dir).unwrap_err();
        assert!(
            matches!(err, PersistError::BadManifest(_)),
            "doc-count mismatch must be reported, got {err}"
        );
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_idempotent_overwrite() {
        let dir = tmp("idem");
        let orig = sample_collection();
        save_collection(&orig, &dir).unwrap();
        save_collection(&orig, &dir).unwrap(); // second save replaces
        let loaded = load_collection(&dir).unwrap();
        assert_eq!(loaded.len(), 5);
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_legacy_layout_still_loads() {
        let dir = tmp("flat");
        save_collection(&sample_collection(), &dir.join("shop")).unwrap();
        let db = load_database(&dir).unwrap();
        assert_eq!(db.collections().count(), 1);
        assert_eq!(db.collection("shop").unwrap().len(), 5);
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_collection_subdir_is_named_in_the_error() {
        let dir = tmp("whichcoll");
        save_collection(&sample_collection(), &dir.join("good")).unwrap();
        let mut broken = Collection::new("zbroken");
        broken.insert(Document::parse("<a>1</a>").unwrap());
        save_collection(&broken, &dir.join("zbroken")).unwrap();
        RealVfs
            .write(&dir.join("zbroken/docs/000000.xml"), b"<torn")
            .unwrap();
        let err = load_database(&dir).unwrap_err();
        match &err {
            PersistError::Collection { dir: d, source } => {
                assert!(d.ends_with("zbroken"), "names the failing subdir: {d}");
                assert!(matches!(**source, PersistError::BadDocument { .. }));
            }
            other => panic!("expected Collection error, got {other}"),
        }
        assert!(err.to_string().contains("zbroken"), "{err}");
        RealVfs.remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_save_database_supersedes_the_first() {
        let dir = tmp("regen");
        let mut db = Database::new();
        db.create_collection("a");
        save_database(&db, &dir).unwrap();
        db.collection_mut("a")
            .unwrap()
            .insert(Document::parse("<x>1</x>").unwrap());
        save_database(&db, &dir).unwrap();
        let loaded = load_database(&dir).unwrap();
        assert_eq!(loaded.collection("a").unwrap().len(), 1);
        RealVfs.remove_dir_all(&dir).ok();
    }
}
