//! Disk persistence: save/load collections and databases as snapshots.
//!
//! Layout (one directory per collection):
//!
//! ```text
//! <dir>/manifest.txt       # name, doc count, index DDL lines
//! <dir>/docs/000000.xml    # one file per live document
//! ```
//!
//! Documents are stored as plain XML (the round-trippable serialization
//! from `xia-xml`); indexes are stored as definitions and rebuilt on
//! load. Loading compacts document ids (dead slots are not persisted).

use crate::collection::Collection;
use crate::database::Database;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use xia_index::{DataType, IndexDefinition, IndexId};
use xia_xml::Document;
use xia_xpath::LinearPath;

/// Errors raised by snapshot save/load.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    /// A document file failed to parse.
    BadDocument {
        file: String,
        error: String,
    },
    /// The manifest is missing or malformed.
    BadManifest(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadDocument { file, error } => {
                write!(f, "document {file} failed to parse: {error}")
            }
            PersistError::BadManifest(msg) => write!(f, "bad manifest: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

const MANIFEST: &str = "manifest.txt";
const DOCS_DIR: &str = "docs";

/// Save a collection snapshot into `dir` (created if absent; existing
/// snapshot files are replaced).
pub fn save_collection(coll: &Collection, dir: &Path) -> Result<(), PersistError> {
    let docs_dir = dir.join(DOCS_DIR);
    if docs_dir.exists() {
        fs::remove_dir_all(&docs_dir)?;
    }
    fs::create_dir_all(&docs_dir)?;

    let mut manifest = fs::File::create(dir.join(MANIFEST))?;
    writeln!(manifest, "collection {}", coll.name())?;
    for ix in coll.indexes() {
        let def = ix.definition();
        writeln!(
            manifest,
            "index {} {} {}",
            def.id.0, def.data_type, def.pattern
        )?;
    }
    let mut count = 0usize;
    for (_, doc) in coll.documents() {
        let file = docs_dir.join(format!("{count:06}.xml"));
        fs::write(file, xia_xml::serialize(doc))?;
        count += 1;
    }
    writeln!(manifest, "documents {count}")?;
    Ok(())
}

/// Load a collection snapshot from `dir`. Document ids are compacted to
/// `0..n` in saved order; statistics and indexes are rebuilt.
pub fn load_collection(dir: &Path) -> Result<Collection, PersistError> {
    let manifest = fs::read_to_string(dir.join(MANIFEST))
        .map_err(|e| PersistError::BadManifest(format!("{}: {e}", dir.display())))?;
    let mut name = None;
    let mut expected_docs: Option<usize> = None;
    let mut index_defs: Vec<IndexDefinition> = Vec::new();
    for line in manifest.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "collection" => name = Some(rest.to_string()),
            "index" => {
                let mut parts = rest.splitn(3, ' ');
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| PersistError::BadManifest(format!("index line: {line}")))?;
                let ty = match parts.next() {
                    Some("VARCHAR") => DataType::Varchar,
                    Some("DOUBLE") => DataType::Double,
                    other => {
                        return Err(PersistError::BadManifest(format!(
                            "unknown index type {other:?}"
                        )))
                    }
                };
                let pattern = parts
                    .next()
                    .ok_or_else(|| PersistError::BadManifest(format!("index line: {line}")))?;
                let pattern = LinearPath::parse(pattern)
                    .map_err(|e| PersistError::BadManifest(format!("pattern: {e}")))?;
                index_defs.push(IndexDefinition::new(IndexId(id), pattern, ty));
            }
            "documents" => {
                expected_docs = rest.trim().parse::<usize>().ok();
            }
            other => {
                return Err(PersistError::BadManifest(format!(
                    "unknown line kind {other:?}"
                )))
            }
        }
    }
    let name = name.ok_or_else(|| PersistError::BadManifest("missing collection name".into()))?;

    let mut coll = Collection::new(name);
    let docs_dir = dir.join(DOCS_DIR);
    let mut files: Vec<_> = fs::read_dir(&docs_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "xml"))
        .collect();
    files.sort();
    for file in files {
        let text = fs::read_to_string(&file)?;
        let doc = Document::parse(&text).map_err(|e| PersistError::BadDocument {
            file: file.display().to_string(),
            error: e.to_string(),
        })?;
        coll.insert(doc);
    }
    if let Some(expected) = expected_docs {
        if coll.len() != expected {
            return Err(PersistError::BadManifest(format!(
                "snapshot has {} document files but the manifest recorded {expected} \
                 (partial copy or interrupted save?)",
                coll.len()
            )));
        }
    }
    for def in index_defs {
        coll.create_index(def);
    }
    Ok(coll)
}

/// Save every collection of `db` into `<dir>/<collection-name>/`.
pub fn save_database(db: &Database, dir: &Path) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    for coll in db.collections() {
        save_collection(coll, &dir.join(coll.name()))?;
    }
    Ok(())
}

/// Load a database saved by [`save_database`]: every subdirectory with a
/// manifest becomes a collection.
pub fn load_database(dir: &Path) -> Result<Database, PersistError> {
    let mut db = Database::new();
    let mut subdirs: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join(MANIFEST).exists())
        .collect();
    subdirs.sort();
    for sub in subdirs {
        let coll = load_collection(&sub)?;
        let name = coll.name().to_string();
        db.create_collection(&name);
        *db.collection_mut(&name).expect("just created") = coll;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_xml::Document;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xia_persist_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_collection() -> Collection {
        let mut c = Collection::new("shop");
        for i in 0..5 {
            let xml = format!(
                r#"<shop><item id="i{i}"><price>{}</price><note>a &amp; b</note></item></shop>"#,
                i * 10
            );
            c.insert(Document::parse(&xml).unwrap());
        }
        c.create_index(IndexDefinition::new(
            IndexId(3),
            LinearPath::parse("//item/price").unwrap(),
            DataType::Double,
        ));
        c
    }

    #[test]
    fn collection_round_trip() {
        let dir = tmp("coll");
        let orig = sample_collection();
        save_collection(&orig, &dir).unwrap();
        let loaded = load_collection(&dir).unwrap();

        assert_eq!(loaded.name(), "shop");
        assert_eq!(loaded.len(), orig.len());
        // Documents byte-identical in saved order.
        for ((_, a), (_, b)) in orig.documents().zip(loaded.documents()) {
            assert_eq!(xia_xml::serialize(a), xia_xml::serialize(b));
        }
        // Index rebuilt with same definition and contents.
        let ix = loaded.index(IndexId(3)).expect("index restored");
        assert_eq!(ix.definition().pattern.to_string(), "//item/price");
        assert_eq!(ix.len(), orig.index(IndexId(3)).unwrap().len());
        // Statistics rebuilt.
        let p = LinearPath::parse("//item/price").unwrap();
        assert_eq!(
            loaded.stats().count_matching(&p),
            orig.stats().count_matching(&p)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_documents_are_compacted() {
        let dir = tmp("compact");
        let mut orig = sample_collection();
        orig.delete(crate::DocId(1)).unwrap();
        orig.delete(crate::DocId(3)).unwrap();
        save_collection(&orig, &dir).unwrap();
        let loaded = load_collection(&dir).unwrap();
        assert_eq!(loaded.len(), 3);
        let ids: Vec<u32> = loaded.documents().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2], "ids compacted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn database_round_trip() {
        let dir = tmp("db");
        let mut db = Database::new();
        db.create_collection("a");
        db.collection_mut("a")
            .unwrap()
            .insert(Document::parse("<x><y>1</y></x>").unwrap());
        db.create_collection("b");
        db.collection_mut("b")
            .unwrap()
            .insert(Document::parse("<z/>").unwrap());
        save_database(&db, &dir).unwrap();
        let loaded = load_database(&dir).unwrap();
        assert_eq!(loaded.collections().count(), 2);
        assert_eq!(loaded.collection("a").unwrap().len(), 1);
        assert_eq!(loaded.collection("b").unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmp("missing");
        fs::create_dir_all(&dir).unwrap();
        let err = load_collection(&dir).unwrap_err();
        assert!(matches!(err, PersistError::BadManifest(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_document_is_reported() {
        let dir = tmp("corrupt");
        save_collection(&sample_collection(), &dir).unwrap();
        fs::write(dir.join("docs/000002.xml"), "<broken>").unwrap();
        let err = load_collection(&dir).unwrap_err();
        assert!(matches!(err, PersistError::BadDocument { .. }), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_document_file_is_detected() {
        let dir = tmp("count");
        save_collection(&sample_collection(), &dir).unwrap();
        fs::remove_file(dir.join("docs/000004.xml")).unwrap();
        let err = load_collection(&dir).unwrap_err();
        assert!(
            matches!(err, PersistError::BadManifest(_)),
            "doc-count mismatch must be reported, got {err}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_idempotent_overwrite() {
        let dir = tmp("idem");
        let orig = sample_collection();
        save_collection(&orig, &dir).unwrap();
        save_collection(&orig, &dir).unwrap(); // second save replaces
        let loaded = load_collection(&dir).unwrap();
        assert_eq!(loaded.len(), 5);
        fs::remove_dir_all(&dir).ok();
    }
}
