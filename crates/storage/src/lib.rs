//! # xia-storage
//!
//! The XML database substrate standing in for DB2 pureXML: named
//! collections of XML documents with page-based size accounting, a
//! DB2-style *path dictionary* (one entry per distinct root-to-node label
//! path), per-path value statistics with equi-depth histograms, physical
//! XML pattern indexes maintained under insert/delete, and the update
//! cost accounting the advisor charges against index benefit.
//!
//! The query optimizer (`xia-optimizer`) consumes three things from this
//! layer: cardinalities (`count_matching` over the path dictionary),
//! value selectivities (histograms), and page counts — the same inputs
//! DB2's optimizer reads from its catalog statistics.

pub mod collection;
pub mod database;
pub mod durable;
pub mod persist;
pub mod stats;
pub mod vfs;

pub use collection::{Collection, DocId, UpdateReport};
pub use database::Database;
pub use durable::{
    checkpoint_database, crc32, fingerprint, recover_database, DurableStore, Recovered, WalOp,
};
pub use persist::{
    load_collection, load_collection_with, load_database, load_database_with, save_collection,
    save_collection_with, save_database, save_database_with, PersistError,
};
pub use stats::{CollectionStats, PathId, PathStats, ValueDist};
pub use vfs::{atomic_write, Fault, FaultVfs, OpRecord, RealVfs, Vfs};

/// Simulated page size shared with the index layer.
pub const PAGE_SIZE: usize = xia_index::physical::PAGE_SIZE;
