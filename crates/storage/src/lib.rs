//! # xia-storage
//!
//! The XML database substrate standing in for DB2 pureXML: named
//! collections of XML documents with page-based size accounting, a
//! DB2-style *path dictionary* (one entry per distinct root-to-node label
//! path), per-path value statistics with equi-depth histograms, physical
//! XML pattern indexes maintained under insert/delete, and the update
//! cost accounting the advisor charges against index benefit.
//!
//! The query optimizer (`xia-optimizer`) consumes three things from this
//! layer: cardinalities (`count_matching` over the path dictionary),
//! value selectivities (histograms), and page counts — the same inputs
//! DB2's optimizer reads from its catalog statistics.

pub mod collection;
pub mod database;
pub mod persist;
pub mod stats;

pub use collection::{Collection, DocId, UpdateReport};
pub use database::Database;
pub use persist::{load_collection, load_database, save_collection, save_database, PersistError};
pub use stats::{CollectionStats, PathId, PathStats, ValueDist};

/// Simulated page size shared with the index layer.
pub const PAGE_SIZE: usize = xia_index::physical::PAGE_SIZE;
