//! Injectable filesystem: every byte the persistence layer touches goes
//! through the [`Vfs`] trait, so tests can deterministically fail,
//! tear, or "crash" any individual filesystem step.
//!
//! Two implementations ship:
//!
//! * [`RealVfs`] — thin std::fs wrapper, the production path;
//! * [`FaultVfs`] — wraps another `Vfs` and injects exactly one
//!   [`Fault`] at a chosen *mutating-operation index*. Reads are never
//!   faulted (a crashed process loses writes, not the ability of the
//!   next process to read).
//!
//! The crash-matrix tests (`crates/storage/tests/crash_matrix.rs`) use
//! the op counter for a dry run first: run the operation once with no
//! fault, read [`FaultVfs::trace`], then sweep every op index with every
//! fault kind and assert recovery lands on a consistent state.

use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Filesystem operations the persistence layer is allowed to perform.
///
/// Mutating operations (everything except the read group) are the unit
/// of fault injection: [`FaultVfs`] counts them in call order.
pub trait Vfs: Send + Sync {
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Create/truncate `path` and write all of `data`.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Append `data` to `path`, creating it if absent.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// fsync a file (or directory) so it survives a crash.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename a file or directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;

    // Read group — never faulted.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let bytes = self.read(path)?;
        String::from_utf8(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
    /// Entries of a directory (full paths, unsorted).
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    fn exists(&self, path: &Path) -> bool;
    fn is_dir(&self, path: &Path) -> bool;
}

/// The production filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        // Directories can be fsync'd through an ordinary open on Unix;
        // on platforms where that fails the rename barrier is the best
        // we can do, so a failed directory sync is not fatal.
        match fs::File::open(path) {
            Ok(f) => match f.sync_all() {
                Ok(()) => Ok(()),
                Err(_) if path.is_dir() => Ok(()),
                Err(e) => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = fs::File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }
}

/// One injected failure, positioned by mutating-operation index
/// (0-based, in call order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The op itself fails cleanly: nothing reaches disk, the caller
    /// sees an error, later ops still work (a transient failure).
    FailOp(usize),
    /// The op is a write/append that only lands its first `keep` bytes,
    /// then the process "crashes": the caller sees an error and every
    /// later mutating op fails too. For non-write ops this degrades to
    /// [`Fault::CrashAfter`] semantics.
    TornWrite { op: usize, keep: usize },
    /// The op completes, then the process "crashes" before the next
    /// step: the caller sees an error on the *completed* op (so it
    /// stops, like a dead process would) but disk holds the op's
    /// effects; every later mutating op fails.
    CrashAfter(usize),
}

/// A recorded mutating operation, for dry runs.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Short label: `write <path>`, `rename <from> -> <to>`, ...
    pub label: String,
    /// Payload length for write/append ops (0 otherwise) — used to
    /// choose torn-write offsets.
    pub data_len: usize,
    /// True for write/append ops (the only ones that can tear).
    pub is_write: bool,
}

/// A [`Vfs`] wrapper injecting one deterministic [`Fault`].
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    fault: Option<Fault>,
    ops: AtomicUsize,
    crashed: AtomicBool,
    trace: Mutex<Vec<OpRecord>>,
}

impl FaultVfs {
    /// Wrap `inner`, injecting `fault` (or none, for a dry run that
    /// only records the operation trace).
    pub fn new(inner: Arc<dyn Vfs>, fault: Option<Fault>) -> FaultVfs {
        FaultVfs {
            inner,
            fault,
            ops: AtomicUsize::new(0),
            crashed: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Number of mutating ops attempted so far.
    pub fn ops(&self) -> usize {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// The mutating-op trace recorded so far (labels + write sizes).
    pub fn trace(&self) -> Vec<OpRecord> {
        self.trace.lock().expect("trace lock").clone()
    }

    fn injected(kind: &str) -> io::Error {
        io::Error::other(format!("injected {kind}"))
    }

    /// Gate one mutating op: decide whether it runs fully, partially
    /// (torn writes hand back the number of bytes to keep), or not at
    /// all. `Ok((i, None))` means op `i` runs fully; `Ok((i, Some(k)))`
    /// means run a write truncated to `k` bytes then report a crash.
    fn admit(
        &self,
        label: String,
        data_len: usize,
        is_write: bool,
    ) -> io::Result<(usize, Option<usize>)> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(Self::injected("crash (process is down)"));
        }
        let i = self.ops.fetch_add(1, Ordering::SeqCst);
        self.trace.lock().expect("trace lock").push(OpRecord {
            label,
            data_len,
            is_write,
        });
        match self.fault {
            Some(Fault::FailOp(k)) if i == k => Err(Self::injected("write failure")),
            Some(Fault::TornWrite { op, keep }) if i == op => {
                self.crashed.store(true, Ordering::SeqCst);
                if is_write {
                    Ok((i, Some(keep.min(data_len))))
                } else {
                    // Non-write op: nothing to tear; crash before it runs.
                    Err(Self::injected("crash"))
                }
            }
            Some(Fault::CrashAfter(k)) if i == k => {
                self.crashed.store(true, Ordering::SeqCst);
                Ok((i, None)) // run fully; caller converts to an error after
            }
            _ => Ok((i, None)),
        }
    }

    /// True when op `op_index` triggered `CrashAfter`: the op ran, but
    /// the caller must now see an error (as a dead process would).
    fn crash_fired_on(&self, op_index: usize) -> bool {
        matches!(self.fault, Some(Fault::CrashAfter(k)) if k == op_index)
    }

    fn run_full(&self, label: String, f: impl FnOnce() -> io::Result<()>) -> io::Result<()> {
        let (i, _) = self.admit(label, 0, false)?;
        f()?;
        if self.crash_fired_on(i) {
            return Err(Self::injected("crash"));
        }
        Ok(())
    }

    fn run_write(
        &self,
        label: String,
        data: &[u8],
        f: impl FnOnce(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        match self.admit(label, data.len(), true)? {
            (_, Some(keep)) => {
                f(&data[..keep])?;
                Err(Self::injected("torn write"))
            }
            (i, None) => {
                f(data)?;
                if self.crash_fired_on(i) {
                    return Err(Self::injected("crash"));
                }
                Ok(())
            }
        }
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.run_full(format!("create_dir_all {}", path.display()), || {
            self.inner.create_dir_all(path)
        })
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.run_write(format!("write {}", path.display()), data, |d| {
            self.inner.write(path, d)
        })
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.run_write(format!("append {}", path.display()), data, |d| {
            self.inner.append(path, d)
        })
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        self.run_full(format!("sync {}", path.display()), || self.inner.sync(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.run_full(
            format!("rename {} -> {}", from.display(), to.display()),
            || self.inner.rename(from, to),
        )
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.run_full(format!("remove_file {}", path.display()), || {
            self.inner.remove_file(path)
        })
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.run_full(format!("remove_dir_all {}", path.display()), || {
            self.inner.remove_dir_all(path)
        })
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        self.inner.is_dir(path)
    }
}

/// Write `data` to `path` atomically: write `path.tmp`, fsync, rename
/// over `path`, fsync the parent directory. After a crash at any point
/// the destination holds either its old contents or `data`, never a
/// prefix.
pub fn atomic_write(vfs: &dyn Vfs, path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    vfs.write(&tmp, data)?;
    vfs.sync(&tmp)?;
    vfs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            vfs.sync(parent)?;
        }
    }
    Ok(())
}

/// The `.tmp` sibling name used by [`atomic_write`]; exposed so cleanup
/// checks (tests, recovery) can spot leftovers.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xia_vfs_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_vfs_round_trips() {
        let dir = tmp("real");
        let v = RealVfs;
        let f = dir.join("a.txt");
        v.write(&f, b"hello").unwrap();
        v.append(&f, b" world").unwrap();
        assert_eq!(v.read_to_string(&f).unwrap(), "hello world");
        v.sync(&f).unwrap();
        v.sync(&dir).unwrap();
        let g = dir.join("b.txt");
        v.rename(&f, &g).unwrap();
        assert!(!v.exists(&f));
        assert!(v.exists(&g));
        assert_eq!(v.read_dir(&dir).unwrap().len(), 1);
        v.remove_file(&g).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_op_is_transient() {
        let dir = tmp("failop");
        let v = FaultVfs::new(Arc::new(RealVfs), Some(Fault::FailOp(0)));
        let f = dir.join("x");
        assert!(v.write(&f, b"one").is_err(), "op 0 fails");
        assert!(!f.exists(), "failed op left nothing behind");
        v.write(&f, b"two").unwrap();
        assert_eq!(v.read_to_string(&f).unwrap(), "two");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_keeps_prefix_then_crashes() {
        let dir = tmp("torn");
        let v = FaultVfs::new(Arc::new(RealVfs), Some(Fault::TornWrite { op: 0, keep: 3 }));
        let f = dir.join("x");
        assert!(v.write(&f, b"hello").is_err());
        assert_eq!(fs::read(&f).unwrap(), b"hel", "prefix landed");
        assert!(v.crashed());
        assert!(v.write(&dir.join("y"), b"nope").is_err(), "down after");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_after_completes_the_op_then_halts() {
        let dir = tmp("crash");
        let v = FaultVfs::new(Arc::new(RealVfs), Some(Fault::CrashAfter(1)));
        let f = dir.join("x");
        v.write(&f, b"one").unwrap();
        assert!(v.append(&f, b"two").is_err(), "op 1 reports the crash");
        assert_eq!(fs::read(&f).unwrap(), b"onetwo", "but its bytes landed");
        assert!(v.sync(&f).is_err(), "down after");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dry_run_records_a_trace() {
        let dir = tmp("trace");
        let v = FaultVfs::new(Arc::new(RealVfs), None);
        v.write(&dir.join("a"), b"abcd").unwrap();
        v.rename(&dir.join("a"), &dir.join("b")).unwrap();
        let trace = v.trace();
        assert_eq!(trace.len(), 2);
        assert!(trace[0].is_write && trace[0].data_len == 4);
        assert!(trace[1].label.starts_with("rename"));
        assert_eq!(v.ops(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_or_preserves() {
        let dir = tmp("atomic");
        let f = dir.join("data");
        atomic_write(&RealVfs, &f, b"old").unwrap();
        assert_eq!(fs::read(&f).unwrap(), b"old");
        // Tear the replacement at every point: the destination must
        // still read back as exactly old or new.
        for op in 0..4 {
            for fault in [
                Fault::FailOp(op),
                Fault::CrashAfter(op),
                Fault::TornWrite { op, keep: 1 },
            ] {
                let v = FaultVfs::new(Arc::new(RealVfs), Some(fault));
                let _ = atomic_write(&v, &f, b"new");
                let now = fs::read(&f).unwrap();
                assert!(
                    now == b"old" || now == b"new",
                    "fault {fault:?} corrupted the file: {now:?}"
                );
                // Reset for the next round.
                let _ = fs::remove_file(tmp_sibling(&f));
                atomic_write(&RealVfs, &f, b"old").unwrap();
            }
        }
        fs::remove_dir_all(&dir).ok();
    }
}
