//! The top-level database: named collections plus an index-id allocator.

use crate::collection::Collection;
use std::collections::BTreeMap;
use std::sync::Arc;
use xia_index::IndexId;

/// An in-memory XML database instance.
///
/// Collections are independent (each has its own path dictionary,
/// statistics and indexes); the database allocates globally unique index
/// ids so explain output and advisor recommendations can name indexes
/// unambiguously.
///
/// Collections sit behind `Arc`, which makes the database **copy-on-
/// write**: `Database::clone` copies only the name → `Arc` map, and a
/// subsequent [`Database::collection_mut`] clones exactly the touched
/// collection (via `Arc::make_mut`), leaving every other collection —
/// and, through [`Collection`]'s own `Arc`-shared documents, most of the
/// touched one — structurally shared with older clones. The snapshot-
/// isolated server leans on this: readers hold immutable `Arc<Database>`
/// snapshots while a single committer clones, mutates, and republishes.
#[derive(Debug, Default, Clone)]
pub struct Database {
    collections: BTreeMap<String, Arc<Collection>>,
    next_index_id: u32,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Create an empty collection. Returns false if the name is taken.
    pub fn create_collection(&mut self, name: &str) -> bool {
        if self.collections.contains_key(name) {
            return false;
        }
        self.collections
            .insert(name.to_string(), Arc::new(Collection::new(name)));
        true
    }

    /// Adopt a pre-built collection under its own name. Returns false
    /// (and drops nothing) if the name is taken.
    pub fn add_collection(&mut self, collection: Collection) -> bool {
        if self.collections.contains_key(collection.name()) {
            return false;
        }
        self.collections
            .insert(collection.name().to_string(), Arc::new(collection));
        true
    }

    pub fn collection(&self, name: &str) -> Option<&Collection> {
        self.collections.get(name).map(Arc::as_ref)
    }

    /// Shared handle to a collection, for readers that want to keep it
    /// alive independently of the database clone they pulled it from.
    pub fn collection_arc(&self, name: &str) -> Option<Arc<Collection>> {
        self.collections.get(name).cloned()
    }

    /// Exclusive access to a collection. On a copy-on-write clone this
    /// is the point where the touched collection is actually copied
    /// (once — later calls in the same clone mutate in place).
    pub fn collection_mut(&mut self, name: &str) -> Option<&mut Collection> {
        self.collections.get_mut(name).map(Arc::make_mut)
    }

    /// Iterate collections in name order.
    pub fn collections(&self) -> impl Iterator<Item = &Collection> {
        self.collections.values().map(Arc::as_ref)
    }

    /// Allocate a fresh index id (shared across real and virtual indexes).
    pub fn allocate_index_id(&mut self) -> IndexId {
        let id = IndexId(self.next_index_id);
        self.next_index_id += 1;
        id
    }

    /// Total pages across all collections (data + indexes).
    pub fn total_pages(&self) -> u64 {
        self.collections().map(Collection::total_pages).sum()
    }

    /// Structural consistency re-check, used after recovering a
    /// poisoned lock: a panicking writer may have been interrupted
    /// mid-mutation, so verify the cheap cross-structure invariants
    /// before trusting the in-memory state again.
    pub fn verify(&self) -> Result<(), String> {
        for (name, coll) in &self.collections {
            if name != coll.name() {
                return Err(format!(
                    "collection registered as '{name}' names itself '{}'",
                    coll.name()
                ));
            }
            let live = coll.documents().count();
            if live != coll.len() {
                return Err(format!(
                    "collection '{name}': len() reports {} but {live} documents are live",
                    coll.len()
                ));
            }
            let mut seen = std::collections::BTreeSet::new();
            for ix in coll.indexes() {
                if !seen.insert(ix.definition().id.0) {
                    return Err(format!(
                        "collection '{name}': duplicate index id {}",
                        ix.definition().id.0
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_xml::Document;

    #[test]
    fn create_and_lookup_collections() {
        let mut db = Database::new();
        assert!(db.create_collection("auctions"));
        assert!(!db.create_collection("auctions"), "duplicate rejected");
        assert!(db.collection("auctions").is_some());
        assert!(db.collection("missing").is_none());
    }

    #[test]
    fn index_ids_are_unique() {
        let mut db = Database::new();
        let a = db.allocate_index_id();
        let b = db.allocate_index_id();
        assert_ne!(a, b);
    }

    #[test]
    fn total_pages_spans_collections() {
        let mut db = Database::new();
        db.create_collection("a");
        db.create_collection("b");
        db.collection_mut("a")
            .unwrap()
            .insert(Document::parse("<x><y>1</y></x>").unwrap());
        assert!(db.total_pages() >= 2);
    }
}
