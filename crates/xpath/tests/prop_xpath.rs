//! Property tests: XPath display/parse round-trips, linearization, and
//! evaluator sanity against generated documents.

use proptest::prelude::*;
use xia_xpath::{parse, Axis, LinearPath, LocationPath, NameTest, Step};

fn name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}"
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
        prop_oneof![name().prop_map(NameTest::Name), Just(NameTest::Wildcard),],
    )
        .prop_map(|(axis, test)| Step {
            axis,
            test,
            predicates: vec![],
        })
}

fn path_strategy() -> impl Strategy<Value = LocationPath> {
    prop::collection::vec(step_strategy(), 1..6).prop_map(|mut steps| {
        // Optionally end with an attribute step.
        if steps.len() > 1 {
            if let NameTest::Name(_) = steps.last().unwrap().test {
                // leave as-is; attribute variant covered separately
            }
        }
        for s in &mut steps {
            s.predicates.clear();
        }
        LocationPath { steps }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// display → parse is the identity on predicate-free paths.
    #[test]
    fn display_parse_identity(path in path_strategy()) {
        let text = path.to_string();
        let reparsed = parse(&text).unwrap();
        prop_assert_eq!(path, reparsed);
    }

    /// Linearization preserves the rendered form for predicate-free paths.
    #[test]
    fn linearization_preserves_text(path in path_strategy()) {
        let lin = LinearPath::from_location_path(&path).unwrap();
        prop_assert_eq!(lin.to_string(), path.to_string());
        // And LinearPath::parse agrees.
        let lin2 = LinearPath::parse(&path.to_string()).unwrap();
        prop_assert_eq!(lin, lin2);
    }

    /// `//*` subsumes every linear path's matches on concrete label paths.
    #[test]
    fn any_pattern_is_top(labels in prop::collection::vec(name(), 1..6)) {
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        prop_assert!(LinearPath::any().matches_label_path(&refs, false));
    }

    /// A concrete path built from labels matches itself and nothing shorter.
    #[test]
    fn concrete_path_self_match(labels in prop::collection::vec(name(), 1..6)) {
        let text = format!("/{}", labels.join("/"));
        let lin = LinearPath::parse(&text).unwrap();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        prop_assert!(lin.matches_label_path(&refs, false));
        if refs.len() > 1 {
            prop_assert!(!lin.matches_label_path(&refs[..refs.len()-1], false));
        }
    }

    /// Replacing any single step's test with a wildcard only widens matching.
    #[test]
    fn wildcard_generalization_widens(
        labels in prop::collection::vec(name(), 1..6),
        idx in 0usize..5,
    ) {
        let text = format!("/{}", labels.join("/"));
        let mut lin = LinearPath::parse(&text).unwrap();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let idx = idx % lin.steps.len();
        lin.steps[idx].test = xia_xpath::PathTest::Wildcard;
        prop_assert!(lin.matches_label_path(&refs, false),
            "wildcarded pattern {} must still match original labels", lin);
    }

    /// Turning a child axis into descendant only widens matching.
    #[test]
    fn descendant_generalization_widens(
        labels in prop::collection::vec(name(), 1..6),
        idx in 0usize..5,
    ) {
        let text = format!("/{}", labels.join("/"));
        let mut lin = LinearPath::parse(&text).unwrap();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let idx = idx % lin.steps.len();
        lin.steps[idx].axis = xia_xpath::PathAxis::Descendant;
        prop_assert!(lin.matches_label_path(&refs, false));
    }
}

// ---------------------------------------------------------------------------
// Evaluator vs. label-path matcher cross-check on generated documents.
// ---------------------------------------------------------------------------

use xia_xml::{Document, DocumentBuilder};

fn small_doc_strategy() -> impl Strategy<Value = Document> {
    // Trees over a tiny alphabet so descendant/wildcard patterns hit often.
    #[derive(Debug, Clone)]
    struct T(String, Vec<T>);
    let label = prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(str::to_string);
    let leaf = label.clone().prop_map(|l| T(l, vec![]));
    let tree = leaf.prop_recursive(3, 20, 3, move |inner| {
        (
            prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(str::to_string),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(l, kids)| T(l, kids))
    });
    tree.prop_map(|t| {
        fn rec(b: &mut DocumentBuilder, t: &T) {
            b.open(&t.0);
            for k in &t.1 {
                rec(b, k);
            }
            b.close();
        }
        let mut b = DocumentBuilder::new();
        rec(&mut b, &t);
        b.finish().unwrap()
    })
}

fn pattern_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        (
            prop_oneof![Just("/"), Just("//")],
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("*")],
        ),
        1..4,
    )
    .prop_map(|steps| steps.into_iter().map(|(a, t)| format!("{a}{t}")).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The navigational evaluator and the label-path matcher agree on
    /// which element nodes a linear pattern selects.
    #[test]
    fn evaluator_agrees_with_label_matcher(doc in small_doc_strategy(), pat in pattern_strategy()) {
        let path = parse(&pat).unwrap();
        let lin = LinearPath::from_location_path(&path).unwrap();
        let selected: std::collections::HashSet<_> =
            xia_xpath::evaluate(&doc, &path).into_iter().collect();
        for n in doc.all_nodes() {
            if doc.kind(n) != xia_xml::NodeKind::Element {
                continue;
            }
            let labels_owned: Vec<String> = doc
                .label_path(n)
                .iter()
                .map(|&id| doc.names().resolve(id).to_string())
                .collect();
            let labels: Vec<&str> = labels_owned.iter().map(String::as_str).collect();
            let by_matcher = lin.matches_label_path(&labels, false);
            let by_eval = selected.contains(&n);
            prop_assert_eq!(
                by_matcher, by_eval,
                "disagreement on node {:?} (path {}) for pattern {}",
                labels, n.as_u32(), lin
            );
        }
    }
}
