//! Navigational XPath evaluator.
//!
//! Direct interpretation of a [`LocationPath`] against a document, with
//! no index assistance. This is both the executor's fallback access path
//! (a "document scan" in optimizer terms) and the ground truth that
//! index-based plans are validated against in tests.

use crate::ast::{Axis, CmpOp, Literal, LocationPath, NameTest, Predicate, Step};
use xia_xml::{Document, NodeId, NodeKind};

/// Evaluate an absolute path against the document. Results are distinct
/// nodes in document order.
pub fn evaluate(doc: &Document, path: &LocationPath) -> Vec<NodeId> {
    let Some(root) = doc.root_element() else {
        return Vec::new();
    };
    // The absolute path starts at the (virtual) document node whose only
    // element child is the root.
    let mut current: Vec<NodeId> = Vec::new();
    if let Some(first) = path.steps.first() {
        seed_from_root(doc, root, first, &mut current);
        current.retain(|&n| check_predicates(doc, n, &path.steps[0].predicates));
    }
    advance(doc, &path.steps[1..], current)
}

/// Evaluate a relative path from a context node.
pub fn evaluate_from(doc: &Document, context: NodeId, path: &LocationPath) -> Vec<NodeId> {
    advance(doc, &path.steps, vec![context])
}

fn advance(doc: &Document, steps: &[Step], mut current: Vec<NodeId>) -> Vec<NodeId> {
    for step in steps {
        let mut next: Vec<NodeId> = Vec::new();
        for &node in &current {
            apply_step(doc, node, step, &mut next);
        }
        dedup_doc_order(doc, &mut next);
        next.retain(|&n| check_predicates(doc, n, &step.predicates));
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// First step of an absolute path: the context is the document node, whose
/// child axis contains exactly the root element and whose descendant axis
/// contains every node.
fn seed_from_root(doc: &Document, root: NodeId, step: &Step, out: &mut Vec<NodeId>) {
    match step.axis {
        Axis::Child => {
            if node_test(doc, root, &step.test, NodeKind::Element) {
                out.push(root);
            }
        }
        Axis::Descendant => {
            if node_test(doc, root, &step.test, NodeKind::Element) {
                out.push(root);
            }
            for d in doc.descendants(root) {
                if test_kind(&step.test)
                    .map(|k| doc.kind(d) == k)
                    .unwrap_or(false)
                    && node_test(doc, d, &step.test, doc.kind(d))
                {
                    out.push(d);
                }
            }
        }
        Axis::Attribute | Axis::Parent => {
            // `/@x` or `/..` on the document node selects nothing.
        }
    }
}

fn apply_step(doc: &Document, node: NodeId, step: &Step, out: &mut Vec<NodeId>) {
    match step.axis {
        Axis::Child => {
            for c in doc.children(node) {
                if node_test(doc, c, &step.test, doc.kind(c)) {
                    out.push(c);
                }
            }
        }
        Axis::Descendant => {
            for d in doc.descendants(node) {
                if doc.kind(d) != NodeKind::Attribute && node_test(doc, d, &step.test, doc.kind(d))
                {
                    out.push(d);
                }
            }
        }
        Axis::Attribute => {
            for a in doc.attributes(node) {
                if match &step.test {
                    NameTest::Name(n) => doc.name(a) == n,
                    NameTest::Wildcard => true,
                    NameTest::Text => false,
                } {
                    out.push(a);
                }
            }
        }
        Axis::Parent => {
            // parent::node(); the document node (parent of the root
            // element) is not representable, so the root's parent is ∅.
            if let Some(p) = doc.parent(node) {
                out.push(p);
            }
        }
    }
}

/// Which node kind a test selects on the child/descendant axes.
fn test_kind(test: &NameTest) -> Option<NodeKind> {
    match test {
        NameTest::Name(_) | NameTest::Wildcard => Some(NodeKind::Element),
        NameTest::Text => Some(NodeKind::Text),
    }
}

fn node_test(doc: &Document, node: NodeId, test: &NameTest, kind: NodeKind) -> bool {
    match test {
        NameTest::Name(n) => kind == NodeKind::Element && doc.name(node) == n,
        NameTest::Wildcard => kind == NodeKind::Element,
        NameTest::Text => kind == NodeKind::Text,
    }
}

fn dedup_doc_order(doc: &Document, nodes: &mut Vec<NodeId>) {
    nodes.sort_unstable_by_key(|&n| doc.start(n));
    nodes.dedup();
}

fn check_predicates(doc: &Document, node: NodeId, preds: &[Predicate]) -> bool {
    preds.iter().all(|p| eval_predicate(doc, node, p))
}

fn eval_predicate(doc: &Document, node: NodeId, pred: &Predicate) -> bool {
    match pred {
        Predicate::Exists(rel) => !evaluate_from(doc, node, rel).is_empty(),
        Predicate::Compare(rel, op, lit) => {
            let targets: Vec<NodeId> = if rel.steps.is_empty() {
                vec![node]
            } else {
                evaluate_from(doc, node, rel)
            };
            // XPath existential semantics: true if ANY selected node's
            // value satisfies the comparison.
            targets.iter().any(|&t| compare_value(doc, t, *op, lit))
        }
        Predicate::And(a, b) => eval_predicate(doc, node, a) && eval_predicate(doc, node, b),
        Predicate::Or(a, b) => eval_predicate(doc, node, a) || eval_predicate(doc, node, b),
        Predicate::Not(a) => !eval_predicate(doc, node, a),
    }
}

/// Does `node`'s value satisfy `op literal`? This is the single source
/// of XPath comparison semantics (numeric coercion, lexicographic
/// fallback, string functions) — the batched executor's vectorized
/// value filters call it per candidate so the two paths cannot drift.
pub fn compare_value(doc: &Document, node: NodeId, op: CmpOp, lit: &Literal) -> bool {
    match lit {
        Literal::Num(n) => match doc.number_value(node) {
            Some(v) => v.partial_cmp(n).is_some_and(|ord| op.holds(ord)),
            None => false,
        },
        Literal::Str(s) => {
            let v = doc.string_value(node);
            if op.is_range() {
                // Range comparison on strings falls back to numeric if both
                // sides are numbers (XPath coerces), else lexicographic.
                match (v.trim().parse::<f64>(), s.trim().parse::<f64>()) {
                    (Ok(a), Ok(b)) => a.partial_cmp(&b).is_some_and(|ord| op.holds(ord)),
                    _ => op.holds(v.as_str().cmp(s.as_str())),
                }
            } else {
                // Covers =, != and the string functions
                // (starts-with / contains).
                op.holds_str(v.as_str(), s.as_str())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use xia_xml::Document;

    fn doc() -> Document {
        Document::parse(
            r#"<site>
                <regions>
                  <africa>
                    <item id="i1"><name>mask</name><price>12.5</price><quantity>2</quantity></item>
                  </africa>
                  <namerica>
                    <item id="i2"><name>drum</name><price>7</price><quantity>5</quantity></item>
                    <item id="i3"><name>flute</name><price>30</price><quantity>1</quantity></item>
                  </namerica>
                </regions>
                <people>
                  <person id="p1"><name>Ann</name><age>34</age></person>
                  <person id="p2"><name>Bob</name></person>
                </people>
              </site>"#,
        )
        .unwrap()
    }

    fn eval_names(d: &Document, q: &str) -> Vec<String> {
        evaluate(d, &parse(q).unwrap())
            .into_iter()
            .map(|n| d.name(n).to_string())
            .collect()
    }

    fn eval_count(d: &Document, q: &str) -> usize {
        evaluate(d, &parse(q).unwrap()).len()
    }

    #[test]
    fn absolute_child_path() {
        let d = doc();
        assert_eq!(eval_count(&d, "/site/regions/africa/item"), 1);
        assert_eq!(eval_count(&d, "/site/regions/namerica/item"), 2);
        assert_eq!(eval_count(&d, "/site/regions/europe/item"), 0);
    }

    #[test]
    fn root_name_must_match() {
        let d = doc();
        assert_eq!(eval_count(&d, "/wrong/regions"), 0);
    }

    #[test]
    fn descendant_axis_finds_all() {
        let d = doc();
        assert_eq!(eval_count(&d, "//item"), 3);
        assert_eq!(eval_count(&d, "//name"), 5);
        assert_eq!(eval_count(&d, "/site//item/price"), 3);
    }

    #[test]
    fn descendant_includes_root() {
        let d = doc();
        assert_eq!(eval_count(&d, "//site"), 1);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        assert_eq!(eval_count(&d, "/site/regions/*/item"), 3);
        assert_eq!(eval_count(&d, "/site/*"), 2);
    }

    #[test]
    fn star_star_counts_all_elements() {
        let d = doc();
        let all_elems = eval_count(&d, "//*");
        assert_eq!(all_elems, 22);
    }

    #[test]
    fn attribute_steps() {
        let d = doc();
        assert_eq!(eval_count(&d, "//item/@id"), 3);
        assert_eq!(eval_count(&d, "//@id"), 5);
        let ids: Vec<String> = evaluate(&d, &parse("/site/people/person/@id").unwrap())
            .into_iter()
            .map(|n| d.value(n).unwrap().to_string())
            .collect();
        assert_eq!(ids, vec!["p1", "p2"]);
    }

    #[test]
    fn text_step() {
        let d = doc();
        let texts: Vec<String> = evaluate(&d, &parse("//person/name/text()").unwrap())
            .into_iter()
            .map(|n| d.value(n).unwrap().to_string())
            .collect();
        assert_eq!(texts, vec!["Ann", "Bob"]);
    }

    #[test]
    fn exists_predicate() {
        let d = doc();
        assert_eq!(eval_count(&d, "//person[age]"), 1);
        assert_eq!(eval_count(&d, "//person[name]"), 2);
        assert_eq!(eval_count(&d, "//item[missing]"), 0);
    }

    #[test]
    fn numeric_comparison_predicates() {
        let d = doc();
        assert_eq!(eval_count(&d, "//item[price > 10]"), 2);
        assert_eq!(eval_count(&d, "//item[price >= 30]"), 1);
        assert_eq!(eval_count(&d, "//item[price < 10]"), 1);
        assert_eq!(eval_count(&d, "//item[price = 7]"), 1);
        assert_eq!(eval_count(&d, "//item[price != 7]"), 2);
    }

    #[test]
    fn string_comparison_predicates() {
        let d = doc();
        assert_eq!(eval_count(&d, r#"//item[name = "drum"]"#), 1);
        assert_eq!(eval_count(&d, r#"//item[@id = "i3"]"#), 1);
        assert_eq!(eval_count(&d, r#"//item[name = "nope"]"#), 0);
    }

    #[test]
    fn boolean_predicates() {
        let d = doc();
        assert_eq!(eval_count(&d, "//item[price > 10 and quantity > 1]"), 1);
        assert_eq!(eval_count(&d, "//item[price > 10 or quantity > 1]"), 3);
        assert_eq!(eval_count(&d, "//person[not(age)]"), 1);
    }

    #[test]
    fn dot_comparison() {
        let d = doc();
        assert_eq!(eval_count(&d, r#"//name[. = "Ann"]"#), 1);
        assert_eq!(eval_count(&d, "//price[. > 10]"), 2);
    }

    #[test]
    fn predicate_path_then_continue() {
        let d = doc();
        let names = eval_names(&d, r#"//item[price > 10]/name"#);
        assert_eq!(names, vec!["name", "name"]);
        let texts: Vec<String> = evaluate(&d, &parse(r#"//item[price > 10]/name"#).unwrap())
            .iter()
            .map(|&n| d.string_value(n))
            .collect();
        assert_eq!(texts, vec!["mask", "flute"]);
    }

    #[test]
    fn results_in_document_order_and_distinct() {
        let d = doc();
        let nodes = evaluate(&d, &parse("//item//text()").unwrap());
        let starts: Vec<u32> = nodes.iter().map(|&n| d.start(n)).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn descendant_within_predicate() {
        let d = doc();
        assert_eq!(eval_count(&d, r#"/site[.//name = "drum"]"#), 1);
        assert_eq!(eval_count(&d, r#"/site[.//name = "zzz"]"#), 0);
    }

    #[test]
    fn nested_predicates() {
        let d = doc();
        assert_eq!(eval_count(&d, "/site/regions[*/item[price > 20]]"), 1);
    }

    #[test]
    fn existential_comparison_multiple_values() {
        // person has two phone numbers; = matches if ANY equals.
        let d2 = Document::parse(
            "<p><person><tel>1</tel><tel>2</tel></person><person><tel>3</tel></person></p>",
        )
        .unwrap();
        assert_eq!(evaluate(&d2, &parse("//person[tel = 2]").unwrap()).len(), 1);
        assert_eq!(
            evaluate(&d2, &parse("//person[tel != 1]").unwrap()).len(),
            2
        );
    }
}
