//! Recursive-descent parser for the XPath fragment.
//!
//! Grammar (whitespace insignificant except inside strings):
//!
//! ```text
//! path      := ('/' | '//') steps | steps          (leading '/' optional for relative paths)
//! steps     := step (('/' | '//') step)*
//! step      := ('@')? (NAME | '*' | 'text()') predicate*
//! predicate := '[' or-expr ']'
//! or-expr   := and-expr ('or' and-expr)*
//! and-expr  := unary ('and' unary)*
//! unary     := 'not' '(' or-expr ')' | '(' or-expr ')' | comparison
//! comparison:= path (CMP literal)?
//! literal   := STRING | NUMBER
//! CMP       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! ```

use crate::ast::{Axis, CmpOp, Literal, LocationPath, NameTest, Predicate, Step};
use std::fmt;

/// XPath syntax error with byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

/// Parse an XPath expression of the supported fragment.
pub fn parse(input: &str) -> Result<LocationPath, XPathError> {
    let mut p = P {
        s: input.as_bytes(),
        pos: 0,
    };
    p.ws();
    let path = p.path()?;
    p.ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    if path.steps.is_empty() {
        return Err(p.err("empty path"));
    }
    Ok(path)
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: &str) -> XPathError {
        XPathError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn ws(&mut self) {
        while matches!(self.s.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.s[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    /// Does a keyword (`and`/`or`/`not`) start here, followed by a non-name char?
    fn keyword(&mut self, kw: &str) -> bool {
        if self.s[self.pos..].starts_with(kw.as_bytes()) {
            let after = self.s.get(self.pos + kw.len()).copied();
            if !after.is_some_and(is_name_byte) {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn path(&mut self) -> Result<LocationPath, XPathError> {
        let mut steps = Vec::new();
        let first_axis = if self.eat("//") {
            Axis::Descendant
        } else {
            // Leading '/' is consumed if present; relative paths also
            // start with a child step.
            self.eat("/");
            Axis::Child
        };
        self.step(first_axis, &mut steps)?;
        loop {
            self.ws();
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else {
                break;
            };
            self.step(axis, &mut steps)?;
        }
        Ok(LocationPath { steps })
    }

    fn step(&mut self, axis: Axis, out: &mut Vec<Step>) -> Result<(), XPathError> {
        self.ws();
        if self.s[self.pos..].starts_with(b"..") {
            self.pos += 2;
            if axis == Axis::Descendant {
                return Err(self.err("'//..' is not supported"));
            }
            out.push(Step {
                axis: Axis::Parent,
                test: NameTest::Wildcard,
                predicates: vec![],
            });
            return Ok(());
        }
        let (axis, test) = if self.eat("@") {
            // `//@a` means "attribute a at any depth"; normalize it to the
            // equivalent `//*/@a` so the attribute axis is always a plain
            // child-of-element hop.
            if axis == Axis::Descendant {
                out.push(Step {
                    axis: Axis::Descendant,
                    test: NameTest::Wildcard,
                    predicates: vec![],
                });
            }
            if self.eat("*") {
                (Axis::Attribute, NameTest::Wildcard)
            } else {
                (Axis::Attribute, NameTest::Name(self.name()?))
            }
        } else if self.eat("*") {
            (axis, NameTest::Wildcard)
        } else if self.s[self.pos..].starts_with(b"text()") {
            self.pos += 6;
            (axis, NameTest::Text)
        } else {
            (axis, NameTest::Name(self.name()?))
        };
        let mut step = Step {
            axis,
            test,
            predicates: vec![],
        };
        loop {
            self.ws();
            if self.eat("[") {
                let pred = self.or_expr()?;
                self.ws();
                if !self.eat("]") {
                    return Err(self.err("expected ']'"));
                }
                step.predicates.push(pred);
            } else {
                break;
            }
        }
        out.push(step);
        Ok(())
    }

    fn or_expr(&mut self) -> Result<Predicate, XPathError> {
        let mut left = self.and_expr()?;
        loop {
            self.ws();
            if self.keyword("or") {
                let right = self.and_expr()?;
                left = Predicate::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn and_expr(&mut self) -> Result<Predicate, XPathError> {
        let mut left = self.unary()?;
        loop {
            self.ws();
            if self.keyword("and") {
                let right = self.unary()?;
                left = Predicate::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn unary(&mut self) -> Result<Predicate, XPathError> {
        self.ws();
        if self.keyword("contains") {
            return self.string_function(CmpOp::Contains);
        }
        if self.keyword("starts-with") {
            return self.string_function(CmpOp::StartsWith);
        }
        if self.keyword("not") {
            self.ws();
            if !self.eat("(") {
                return Err(self.err("expected '(' after not"));
            }
            let inner = self.or_expr()?;
            self.ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat("(") {
            let inner = self.or_expr()?;
            self.ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(inner);
        }
        self.comparison()
    }

    /// `contains(rel/path, "lit")` / `starts-with(rel/path, "lit")`.
    /// The keyword has already been consumed.
    fn string_function(&mut self, op: CmpOp) -> Result<Predicate, XPathError> {
        self.ws();
        if !self.eat("(") {
            return Err(self.err("expected '(' after string function"));
        }
        self.ws();
        // First argument: a relative path or `.`.
        let path = if self.peek() == Some(b'.') {
            self.pos += 1;
            if matches!(self.peek(), Some(b'/')) {
                self.path()?
            } else {
                LocationPath { steps: vec![] }
            }
        } else {
            self.path()?
        };
        self.ws();
        if !self.eat(",") {
            return Err(self.err("expected ',' in string function"));
        }
        let lit = self.literal()?;
        if !matches!(lit, Literal::Str(_)) {
            return Err(self.err("string function argument must be a string literal"));
        }
        self.ws();
        if !self.eat(")") {
            return Err(self.err("expected ')' after string function"));
        }
        Ok(Predicate::Compare(path, op, lit))
    }

    fn comparison(&mut self) -> Result<Predicate, XPathError> {
        self.ws();
        // A predicate path may also be `.` (the context node's own value) or
        // start with `.` as in `.//b`.
        let path = if self.peek() == Some(b'.') && !self.s[self.pos..].starts_with(b"..") {
            self.pos += 1;
            if matches!(self.peek(), Some(b'/')) {
                self.path()?
            } else {
                LocationPath { steps: vec![] }
            }
        } else {
            self.path()?
        };
        self.ws();
        let op = if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            None => {
                if path.steps.is_empty() {
                    Err(self.err("'.' requires a comparison"))
                } else {
                    Ok(Predicate::Exists(path))
                }
            }
            Some(op) => {
                let lit = self.literal()?;
                Ok(Predicate::Compare(path, op, lit))
            }
        }
    }

    fn literal(&mut self) -> Result<Literal, XPathError> {
        self.ws();
        match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == q {
                        let s = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                        self.pos += 1;
                        return Ok(Literal::Str(s));
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'.' => {
                let start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.') {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.s[start..self.pos]).unwrap();
                text.parse::<f64>()
                    .map(Literal::Num)
                    .map_err(|_| self.err("invalid number literal"))
            }
            _ => Err(self.err("expected literal")),
        }
    }

    fn name(&mut self) -> Result<String, XPathError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.pos += 1,
            _ => return Err(self.err("expected name")),
        }
        while matches!(self.peek(), Some(b) if is_name_byte(b)) {
            self.pos += 1;
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> LocationPath {
        parse(s).unwrap()
    }

    #[test]
    fn parses_absolute_child_path() {
        let path = p("/site/regions/africa");
        assert_eq!(path.steps.len(), 3);
        assert!(path.steps.iter().all(|s| s.axis == Axis::Child));
        assert_eq!(path.to_string(), "/site/regions/africa");
    }

    #[test]
    fn parses_descendant_axis() {
        let path = p("//item/price");
        assert_eq!(path.steps[0].axis, Axis::Descendant);
        assert_eq!(path.steps[1].axis, Axis::Child);
        assert_eq!(path.to_string(), "//item/price");
    }

    #[test]
    fn parses_wildcards() {
        let path = p("/regions/*/item/*");
        assert_eq!(path.steps[1].test, NameTest::Wildcard);
        assert_eq!(path.steps[3].test, NameTest::Wildcard);
    }

    #[test]
    fn parses_attribute_step() {
        let path = p("/site/item/@id");
        assert_eq!(path.steps[2].axis, Axis::Attribute);
        assert_eq!(path.steps[2].test, NameTest::Name("id".into()));
        assert_eq!(path.to_string(), "/site/item/@id");
    }

    #[test]
    fn descendant_attribute_normalizes_to_wildcard_hop() {
        let path = p("//@id");
        assert_eq!(path.steps.len(), 2);
        assert_eq!(path.steps[0].axis, Axis::Descendant);
        assert_eq!(path.steps[0].test, NameTest::Wildcard);
        assert_eq!(path.steps[1].axis, Axis::Attribute);
        assert_eq!(path.to_string(), "//*/@id");
    }

    #[test]
    fn parses_text_step() {
        let path = p("/a/b/text()");
        assert_eq!(path.steps[2].test, NameTest::Text);
    }

    #[test]
    fn parses_exists_predicate() {
        let path = p("/site/item[price]");
        assert_eq!(path.steps[1].predicates.len(), 1);
        match &path.steps[1].predicates[0] {
            Predicate::Exists(rel) => assert_eq!(rel.steps[0].test, NameTest::Name("price".into())),
            other => panic!("expected Exists, got {other:?}"),
        }
    }

    #[test]
    fn parses_comparison_predicates() {
        let path = p("/site/item[price > 10.5]");
        match &path.steps[1].predicates[0] {
            Predicate::Compare(_, CmpOp::Gt, Literal::Num(n)) => assert_eq!(*n, 10.5),
            other => panic!("unexpected {other:?}"),
        }
        let path = p(r#"//order[@status = "filled"]"#);
        match &path.steps[0].predicates[0] {
            Predicate::Compare(rel, CmpOp::Eq, Literal::Str(s)) => {
                assert_eq!(rel.steps[0].axis, Axis::Attribute);
                assert_eq!(s, "filled");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_boolean_combinations() {
        let path = p(r#"/a/b[c = 1 and d = 2 or not(e)]"#);
        match &path.steps[1].predicates[0] {
            Predicate::Or(left, right) => {
                assert!(matches!(**left, Predicate::And(_, _)));
                assert!(matches!(**right, Predicate::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nested_predicate_paths() {
        let path = p("/site//item[payment/status = \"ok\"]/name");
        assert_eq!(path.steps.len(), 3);
        match &path.steps[1].predicates[0] {
            Predicate::Compare(rel, _, _) => assert_eq!(rel.steps.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_dot_comparison() {
        let path = p("/a/b[. = \"x\"]");
        match &path.steps[1].predicates[0] {
            Predicate::Compare(rel, CmpOp::Eq, _) => assert!(rel.steps.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_descendant_inside_predicate() {
        let path = p("/a[.//b = 3]");
        match &path.steps[0].predicates[0] {
            Predicate::Compare(rel, _, _) => {
                assert_eq!(rel.steps[0].axis, Axis::Descendant);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("/").is_err());
        assert!(parse("/a/[b]").is_err());
        assert!(parse("/a[b").is_err());
        assert!(parse("/a]").is_err());
        assert!(parse("/a[b = ]").is_err());
        assert!(parse("/a[= 3]").is_err());
        assert!(parse("/a[b = 'x]").is_err());
        assert!(parse("/a bcd").is_err());
    }

    #[test]
    fn names_with_punctuation() {
        let path = p("/ns:doc/my-elem/my.field");
        assert_eq!(path.steps[0].test, NameTest::Name("ns:doc".into()));
        assert_eq!(path.steps[1].test, NameTest::Name("my-elem".into()));
    }

    #[test]
    fn and_or_are_not_greedy_over_names() {
        // `android` starts with `and` but is a name.
        let path = p("/a[android = 1]");
        match &path.steps[0].predicates[0] {
            Predicate::Compare(rel, _, _) => {
                assert_eq!(rel.steps[0].test, NameTest::Name("android".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_round_trips_through_parser() {
        for src in [
            "/site/regions/africa/item/quantity",
            "//item[price > 10]/name",
            "/site//open_auction[bidder/increase = 3]",
            "/a/b[c = \"v\" and d]",
            "/order/@id",
            "//*",
        ] {
            let once = p(src);
            let again = p(&once.to_string());
            assert_eq!(once, again, "round trip failed for {src}");
        }
    }
}
