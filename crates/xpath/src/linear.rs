//! Linear path normal form.
//!
//! A *linear path* is a predicate-free path over `{/, //, *}` with an
//! optional attribute tail — exactly the language of DB2 XMLPATTERN
//! index patterns and of the advisor's generalization DAG. Index
//! matching, containment and statistics lookup all operate on this form.

use crate::ast::{Axis, LocationPath, NameTest};
use std::fmt;

/// Separator axis of a linear step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathAxis {
    /// `/step`
    Child,
    /// `//step`
    Descendant,
}

/// Node test of a linear step.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathTest {
    /// A concrete label.
    Label(Box<str>),
    /// `*` — any label.
    Wildcard,
}

impl PathTest {
    pub fn label(s: &str) -> PathTest {
        PathTest::Label(s.into())
    }

    /// True if this test accepts `label`.
    #[inline]
    pub fn accepts(&self, label: &str) -> bool {
        match self {
            PathTest::Label(l) => &**l == label,
            PathTest::Wildcard => true,
        }
    }

    /// True if this test accepts every label `other` accepts.
    pub fn subsumes(&self, other: &PathTest) -> bool {
        match (self, other) {
            (PathTest::Wildcard, _) => true,
            (PathTest::Label(a), PathTest::Label(b)) => a == b,
            (PathTest::Label(_), PathTest::Wildcard) => false,
        }
    }
}

/// One step of a linear path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinearStep {
    pub axis: PathAxis,
    pub test: PathTest,
    /// True only for a final attribute step (`/@id`).
    pub is_attribute: bool,
}

impl LinearStep {
    pub fn child(label: &str) -> LinearStep {
        LinearStep {
            axis: PathAxis::Child,
            test: PathTest::label(label),
            is_attribute: false,
        }
    }

    pub fn descendant(label: &str) -> LinearStep {
        LinearStep {
            axis: PathAxis::Descendant,
            test: PathTest::label(label),
            is_attribute: false,
        }
    }

    pub fn child_wild() -> LinearStep {
        LinearStep {
            axis: PathAxis::Child,
            test: PathTest::Wildcard,
            is_attribute: false,
        }
    }

    pub fn descendant_wild() -> LinearStep {
        LinearStep {
            axis: PathAxis::Descendant,
            test: PathTest::Wildcard,
            is_attribute: false,
        }
    }

    pub fn attribute(label: &str) -> LinearStep {
        LinearStep {
            axis: PathAxis::Child,
            test: PathTest::label(label),
            is_attribute: true,
        }
    }
}

/// A rooted, predicate-free path over `{/, //, *}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinearPath {
    pub steps: Vec<LinearStep>,
}

impl LinearPath {
    pub fn new(steps: Vec<LinearStep>) -> LinearPath {
        LinearPath { steps }
    }

    /// Parse a linear path from text (e.g. an index pattern `/a//b/*`).
    /// Fails if the expression contains predicates or `text()`.
    pub fn parse(input: &str) -> Result<LinearPath, crate::XPathError> {
        let path = crate::parse(input)?;
        LinearPath::from_location_path(&path).ok_or(crate::XPathError {
            message: "not a linear path (predicates/text() not allowed)".into(),
            offset: 0,
        })
    }

    /// Extract the linear trunk of a location path, dropping nothing:
    /// returns `None` if any step has predicates or is a `text()` test
    /// (callers that want the trunk of a predicated path use
    /// [`LinearPath::trunk_of`]).
    pub fn from_location_path(path: &LocationPath) -> Option<LinearPath> {
        if path.steps.iter().any(|s| !s.predicates.is_empty()) {
            return None;
        }
        LinearPath::trunk_of(path)
    }

    /// The linear trunk of a location path, ignoring predicates. A trailing
    /// `text()` step is dropped (the value lives on the element). Returns
    /// `None` if a non-final step is `text()`.
    pub fn trunk_of(path: &LocationPath) -> Option<LinearPath> {
        let mut steps: Vec<LinearStep> = Vec::with_capacity(path.steps.len());
        for (i, s) in path.steps.iter().enumerate() {
            if s.axis == Axis::Parent {
                // `..` undoes the previous step when it was an anchored
                // child element hop; otherwise the trunk cannot be
                // expressed as a linear path.
                match steps.pop() {
                    Some(prev) if prev.axis == PathAxis::Child && !prev.is_attribute => continue,
                    _ => return None,
                }
            }
            let test = match &s.test {
                NameTest::Name(n) => PathTest::label(n),
                NameTest::Wildcard => PathTest::Wildcard,
                NameTest::Text => {
                    return (i + 1 == path.steps.len()).then_some(LinearPath { steps });
                }
            };
            steps.push(LinearStep {
                axis: match s.axis {
                    Axis::Descendant => PathAxis::Descendant,
                    Axis::Child | Axis::Attribute | Axis::Parent => PathAxis::Child,
                },
                test,
                is_attribute: s.axis == Axis::Attribute,
            });
        }
        Some(LinearPath { steps })
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True if the final step targets an attribute.
    pub fn targets_attribute(&self) -> bool {
        self.steps.last().is_some_and(|s| s.is_attribute)
    }

    /// True if any step uses the descendant axis.
    pub fn has_descendant(&self) -> bool {
        self.steps.iter().any(|s| s.axis == PathAxis::Descendant)
    }

    /// True if any step is a wildcard.
    pub fn has_wildcard(&self) -> bool {
        self.steps.iter().any(|s| s.test == PathTest::Wildcard)
    }

    /// Number of concrete (non-wildcard) labels — a specificity measure
    /// used to order DAG nodes.
    pub fn concrete_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.test, PathTest::Label(_)))
            .count()
    }

    /// The most general pattern `//*`, which matches every node.
    /// This is the virtual index pattern the Enumerate Indexes mode plants.
    pub fn any() -> LinearPath {
        LinearPath {
            steps: vec![LinearStep::descendant_wild()],
        }
    }

    /// True iff this is `//*` (or `//*` with attribute tail semantics).
    pub fn is_any(&self) -> bool {
        self.steps.len() == 1
            && self.steps[0].axis == PathAxis::Descendant
            && self.steps[0].test == PathTest::Wildcard
            && !self.steps[0].is_attribute
    }

    /// Does this (pattern) path match the concrete root-to-node label path
    /// `labels`? `labels` has one label per element hop; `is_attr_leaf`
    /// says whether the final label names an attribute.
    ///
    /// Matching is standard path-regex matching with `//` ≡ `Σ*` and
    /// `*` ≡ any single label, implemented with the classic two-pointer
    /// backtracking that is linear in practice.
    pub fn matches_label_path(&self, labels: &[&str], is_attr_leaf: bool) -> bool {
        if self.targets_attribute() != is_attr_leaf {
            return false;
        }
        // Fast path: child-only patterns match positionally — no
        // backtracking, no memo allocation. This is the hot case for
        // index re-checks against wildcarded (but anchored) patterns.
        if self.steps.iter().all(|s| s.axis == PathAxis::Child) {
            return self.steps.len() == labels.len()
                && self
                    .steps
                    .iter()
                    .zip(labels)
                    .all(|(s, l)| s.test.accepts(l));
        }
        matches_at(&self.steps, labels)
    }
}

/// Greedy wildcard matching: steps vs concrete labels.
fn matches_at(steps: &[LinearStep], labels: &[&str]) -> bool {
    // dp[i][j] = steps[i..] matches labels[j..] as an anchored suffix match.
    // Memoized recursion over small paths; typical sizes are < 10 so a
    // simple bitset-free Vec<Option<bool>> suffices.
    let n = steps.len();
    let m = labels.len();
    let mut memo = vec![u8::MAX; (n + 1) * (m + 1)];
    fn rec(
        steps: &[LinearStep],
        labels: &[&str],
        i: usize,
        j: usize,
        memo: &mut [u8],
        m: usize,
    ) -> bool {
        let key = i * (m + 1) + j;
        if memo[key] != u8::MAX {
            return memo[key] == 1;
        }
        let res = if i == steps.len() {
            j == labels.len()
        } else {
            let step = &steps[i];
            match step.axis {
                PathAxis::Child => {
                    j < labels.len()
                        && step.test.accepts(labels[j])
                        && rec(steps, labels, i + 1, j + 1, memo, m)
                }
                PathAxis::Descendant => {
                    // `//t` consumes >= 0 intermediate labels then one
                    // label accepted by `t`.
                    (j..labels.len()).any(|k| {
                        step.test.accepts(labels[k]) && rec(steps, labels, i + 1, k + 1, memo, m)
                    })
                }
            }
        };
        memo[key] = res as u8;
        res
    }
    rec(steps, labels, 0, 0, &mut memo, m)
}

impl fmt::Display for LinearPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            f.write_str(match step.axis {
                PathAxis::Child => "/",
                PathAxis::Descendant => "//",
            })?;
            if step.is_attribute {
                f.write_str("@")?;
            }
            match &step.test {
                PathTest::Label(l) => f.write_str(l)?,
                PathTest::Wildcard => f.write_str("*")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(s: &str) -> LinearPath {
        LinearPath::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "/a/b/c",
            "//item/price",
            "/regions/*/item/*",
            "//*",
            "/order/@id",
            "//a//b",
        ] {
            assert_eq!(lp(s).to_string(), s);
        }
    }

    #[test]
    fn rejects_predicated_paths() {
        assert!(LinearPath::parse("/a/b[c = 1]").is_err());
    }

    #[test]
    fn trunk_ignores_predicates() {
        let ast = crate::parse("/site/item[price > 3]/name").unwrap();
        let trunk = LinearPath::trunk_of(&ast).unwrap();
        assert_eq!(trunk.to_string(), "/site/item/name");
    }

    #[test]
    fn trunk_folds_parent_steps() {
        let t = |q: &str| LinearPath::trunk_of(&crate::parse(q).unwrap()).map(|p| p.to_string());
        assert_eq!(t("/a/b/../c"), Some("/a/c".into()));
        assert_eq!(t("/a/*/.."), Some("/a".into()));
        // Parent of a descendant step has no linear form.
        assert_eq!(t("/a//b/../c"), None);
        // Parent past the root has no linear form either.
        assert_eq!(t("/a/../.."), None);
    }

    #[test]
    fn trunk_drops_trailing_text() {
        let ast = crate::parse("/a/b/text()").unwrap();
        let trunk = LinearPath::trunk_of(&ast).unwrap();
        assert_eq!(trunk.to_string(), "/a/b");
    }

    #[test]
    fn concrete_label_matching_child_only() {
        let p = lp("/site/item/price");
        assert!(p.matches_label_path(&["site", "item", "price"], false));
        assert!(!p.matches_label_path(&["site", "item"], false));
        assert!(!p.matches_label_path(&["site", "item", "price", "x"], false));
        assert!(!p.matches_label_path(&["site", "item", "name"], false));
    }

    #[test]
    fn wildcard_matches_any_single_label() {
        let p = lp("/regions/*/item");
        assert!(p.matches_label_path(&["regions", "africa", "item"], false));
        assert!(p.matches_label_path(&["regions", "europe", "item"], false));
        assert!(!p.matches_label_path(&["regions", "item"], false));
        assert!(!p.matches_label_path(&["regions", "a", "b", "item"], false));
    }

    #[test]
    fn descendant_skips_arbitrary_prefix() {
        let p = lp("//item/price");
        assert!(p.matches_label_path(&["site", "regions", "africa", "item", "price"], false));
        assert!(p.matches_label_path(&["item", "price"], false));
        assert!(!p.matches_label_path(&["site", "price"], false));
    }

    #[test]
    fn double_descendant_backtracks() {
        let p = lp("//a//a/b");
        assert!(p.matches_label_path(&["a", "x", "a", "b"], false));
        assert!(p.matches_label_path(&["a", "a", "b"], false));
        assert!(!p.matches_label_path(&["a", "b"], false));
    }

    #[test]
    fn any_pattern_matches_everything_elementish() {
        let p = LinearPath::any();
        assert!(p.is_any());
        assert!(p.matches_label_path(&["x"], false));
        assert!(p.matches_label_path(&["a", "b", "c"], false));
        assert!(!p.matches_label_path(&[], false));
        assert!(!p.matches_label_path(&["a", "id"], true)); // attribute leaf
    }

    #[test]
    fn attribute_targeting_must_agree() {
        let p = lp("/order/@id");
        assert!(p.targets_attribute());
        assert!(p.matches_label_path(&["order", "id"], true));
        assert!(!p.matches_label_path(&["order", "id"], false));
    }

    #[test]
    fn subsumption_of_tests() {
        assert!(PathTest::Wildcard.subsumes(&PathTest::label("a")));
        assert!(PathTest::Wildcard.subsumes(&PathTest::Wildcard));
        assert!(PathTest::label("a").subsumes(&PathTest::label("a")));
        assert!(!PathTest::label("a").subsumes(&PathTest::label("b")));
        assert!(!PathTest::label("a").subsumes(&PathTest::Wildcard));
    }

    #[test]
    fn specificity_counts() {
        assert_eq!(lp("/a/*/c").concrete_steps(), 2);
        assert_eq!(LinearPath::any().concrete_steps(), 0);
        assert!(lp("//a").has_descendant());
        assert!(!lp("/a").has_descendant());
        assert!(lp("/a/*").has_wildcard());
    }
}
