//! # xia-xpath
//!
//! An XPath subset sufficient for the XML Index Advisor reproduction:
//! the fragment DB2's XML index machinery cares about — rooted location
//! paths over the `child` (`/`), `descendant-or-self` (`//`) and
//! `attribute` (`@`) axes, name tests with wildcards, and predicates
//! comparing relative paths against string/number literals, combined
//! with `and` / `or` / `not`.
//!
//! Three layers:
//! * [`ast`] — parsed expression trees ([`LocationPath`], [`Predicate`]).
//! * [`linear`] — the *linear path* normal form over `{/, //, *}` used by
//!   index patterns and the generalization DAG (no predicates).
//! * [`eval`] — a navigational evaluator over [`xia_xml::Document`],
//!   the correctness baseline the optimizer's index plans are tested
//!   against.
//!
//! ```
//! use xia_xml::Document;
//! use xia_xpath::{parse, evaluate};
//!
//! let doc = Document::parse("<site><item><price>9</price></item><item><price>20</price></item></site>").unwrap();
//! let path = parse("/site/item[price > 10]").unwrap();
//! let hits = evaluate(&doc, &path);
//! assert_eq!(hits.len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod linear;
mod parser;

pub use ast::{Axis, CmpOp, Literal, LocationPath, NameTest, Predicate, Step, StepClass};
pub use eval::{compare_value, evaluate, evaluate_from};
pub use linear::{LinearPath, LinearStep, PathAxis, PathTest};
pub use parser::{parse, XPathError};
