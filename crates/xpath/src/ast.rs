//! XPath expression trees.

use std::fmt;

/// The axes our fragment supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/step`
    Child,
    /// `//step` — descendant-or-self::node()/child, abbreviated.
    Descendant,
    /// `@name`
    Attribute,
    /// `..` — the parent element. Queries using it still evaluate
    /// navigationally, but their paths have no linear normal form, so
    /// they are *not indexable* (one of the "certain language features"
    /// the paper notes prevent index use).
    Parent,
}

/// Node test of a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NameTest {
    /// An element or attribute name.
    Name(String),
    /// `*` (any element) or `@*` (any attribute).
    Wildcard,
    /// `text()`.
    Text,
}

/// One location step: axis, node test and zero or more predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NameTest,
    pub predicates: Vec<Predicate>,
}

/// How a step maps onto a batch operator: which structural join flavor
/// it compiles to and which node population (column) it consumes. The
/// batched executor dispatches on this instead of re-matching
/// `(axis, test)` pairs at every step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepClass {
    /// `child::name` / `child::*` — element children; stack join on
    /// `level(child) == level(context) + 1`.
    ChildElement,
    /// `descendant::name` / `descendant::*` — elements inside any
    /// context region; sort-merge containment join.
    DescendantElement,
    /// `child::text()` — text children; same stack join, text column.
    ChildText,
    /// `descendant::text()` — text nodes inside any context region.
    DescendantText,
    /// `@name` / `@*` — attribute nodes owned by a context element.
    Attribute,
    /// `..` — distinct parents of the context set, no node test.
    Parent,
    /// Statically empty combinations (`@text()`, `../anything` never is —
    /// only the attribute axis with a text test selects nothing).
    Empty,
}

impl Step {
    /// Classify this step for join compilation. Mirrors exactly what the
    /// navigational evaluator's `apply_step` does for each
    /// `(axis, test)` pair.
    pub fn class(&self) -> StepClass {
        match (self.axis, &self.test) {
            (Axis::Child, NameTest::Name(_) | NameTest::Wildcard) => StepClass::ChildElement,
            (Axis::Child, NameTest::Text) => StepClass::ChildText,
            (Axis::Descendant, NameTest::Name(_) | NameTest::Wildcard) => {
                StepClass::DescendantElement
            }
            (Axis::Descendant, NameTest::Text) => StepClass::DescendantText,
            (Axis::Attribute, NameTest::Name(_) | NameTest::Wildcard) => StepClass::Attribute,
            (Axis::Attribute, NameTest::Text) => StepClass::Empty,
            (Axis::Parent, _) => StepClass::Parent,
        }
    }

    /// The name this step selects by, if it is a name test (`None` for
    /// wildcard/text tests, whose columns are not name-keyed).
    pub fn test_name(&self) -> Option<&str> {
        match &self.test {
            NameTest::Name(n) => Some(n.as_str()),
            NameTest::Wildcard | NameTest::Text => None,
        }
    }

    pub fn child(name: &str) -> Step {
        Step {
            axis: Axis::Child,
            test: NameTest::Name(name.into()),
            predicates: vec![],
        }
    }

    pub fn descendant(name: &str) -> Step {
        Step {
            axis: Axis::Descendant,
            test: NameTest::Name(name.into()),
            predicates: vec![],
        }
    }
}

/// A location path. In this fragment paths used as queries are absolute
/// (start at the document root); paths inside predicates are relative.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    pub steps: Vec<Step>,
}

impl LocationPath {
    /// True if any step anywhere (including inside predicates) uses the
    /// descendant axis.
    pub fn uses_descendant(&self) -> bool {
        self.steps.iter().any(|s| {
            s.axis == Axis::Descendant || s.predicates.iter().any(Predicate::uses_descendant)
        })
    }

    /// Total number of steps including predicate paths.
    pub fn total_steps(&self) -> usize {
        self.steps
            .iter()
            .map(|s| {
                1 + s
                    .predicates
                    .iter()
                    .map(Predicate::total_steps)
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `starts-with(path, "prefix")` — string-function predicate;
    /// sargable on a VARCHAR index as a prefix range.
    StartsWith,
    /// `contains(path, "needle")` — string-function predicate; never
    /// sargable, evaluated as a residual.
    Contains,
}

impl CmpOp {
    /// Evaluate the comparison on an ordering of `left` vs `right`.
    /// Panics for the string-function operators, which are not defined by
    /// an ordering — use [`CmpOp::holds_str`] for those.
    pub fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::StartsWith | CmpOp::Contains => {
                unreachable!("string-function operators have no ordering semantics")
            }
        }
    }

    /// Evaluate the comparison directly on string operands (covers the
    /// string-function operators; falls back to ordering for the rest).
    pub fn holds_str(self, left: &str, right: &str) -> bool {
        match self {
            CmpOp::StartsWith => left.starts_with(right),
            CmpOp::Contains => left.contains(right),
            _ => self.holds(left.cmp(right)),
        }
    }

    /// True for the XPath string functions.
    pub fn is_string_function(self) -> bool {
        matches!(self, CmpOp::StartsWith | CmpOp::Contains)
    }

    /// True for `<, <=, >, >=` — these need a range-capable (typed) index.
    pub fn is_range(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }
}

/// Literal operand of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Str(String),
    Num(f64),
}

/// Predicate expression inside `[...]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `[rel/path]` — true iff the relative path selects at least one node.
    Exists(LocationPath),
    /// `[rel/path op literal]` — XPath existential comparison semantics.
    Compare(LocationPath, CmpOp, Literal),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    pub fn uses_descendant(&self) -> bool {
        match self {
            Predicate::Exists(p) => p.uses_descendant(),
            Predicate::Compare(p, _, _) => p.uses_descendant(),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.uses_descendant() || b.uses_descendant()
            }
            Predicate::Not(a) => a.uses_descendant(),
        }
    }

    pub fn total_steps(&self) -> usize {
        match self {
            Predicate::Exists(p) | Predicate::Compare(p, _, _) => p.total_steps(),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.total_steps() + b.total_steps(),
            Predicate::Not(a) => a.total_steps(),
        }
    }
}

// ---------------------------------------------------------------------------
// Display: regenerate canonical XPath text.
// ---------------------------------------------------------------------------

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Name(n) => f.write_str(n),
            NameTest::Wildcard => f.write_str("*"),
            NameTest::Text => f.write_str("text()"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.axis == Axis::Parent {
            f.write_str("..")?;
        } else if self.axis == Axis::Attribute {
            write!(f, "@{}", self.test)?;
        } else {
            write!(f, "{}", self.test)?;
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            match step.axis {
                Axis::Child | Axis::Attribute | Axis::Parent => f.write_str("/")?,
                Axis::Descendant => f.write_str("//")?,
            }
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::StartsWith => "starts-with",
            CmpOp::Contains => "contains",
        })
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Num(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rel(p: &LocationPath) -> String {
            // Relative paths render without the leading '/'.
            let s = p.to_string();
            s.strip_prefix('/')
                .filter(|_| !s.starts_with("//"))
                .map_or(s.clone(), str::to_string)
        }
        match self {
            Predicate::Exists(p) => f.write_str(&rel(p)),
            Predicate::Compare(p, op, lit) if op.is_string_function() => {
                write!(
                    f,
                    "{op}({}, {lit})",
                    if p.steps.is_empty() {
                        ".".into()
                    } else {
                        rel(p)
                    }
                )
            }
            Predicate::Compare(p, op, lit) => write!(f, "{} {op} {lit}", rel(p)),
            Predicate::And(a, b) => write!(f, "{a} and {b}"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(a) => write!(f, "not({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_holds() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.holds(Equal));
        assert!(!CmpOp::Eq.holds(Less));
        assert!(CmpOp::Ne.holds(Greater));
        assert!(CmpOp::Lt.holds(Less));
        assert!(CmpOp::Le.holds(Equal));
        assert!(CmpOp::Gt.holds(Greater));
        assert!(CmpOp::Ge.holds(Equal));
        assert!(!CmpOp::Ge.holds(Less));
    }

    #[test]
    fn range_ops() {
        assert!(CmpOp::Lt.is_range());
        assert!(CmpOp::Ge.is_range());
        assert!(!CmpOp::Eq.is_range());
        assert!(!CmpOp::Ne.is_range());
    }

    #[test]
    fn display_simple_path() {
        let p = LocationPath {
            steps: vec![
                Step::child("site"),
                Step::descendant("item"),
                Step::child("price"),
            ],
        };
        assert_eq!(p.to_string(), "/site//item/price");
    }

    #[test]
    fn uses_descendant_sees_predicates() {
        let inner = LocationPath {
            steps: vec![Step::descendant("x")],
        };
        let mut step = Step::child("a");
        step.predicates.push(Predicate::Exists(inner));
        let p = LocationPath { steps: vec![step] };
        assert!(p.uses_descendant());
    }

    #[test]
    fn total_steps_counts_predicates() {
        let inner = LocationPath {
            steps: vec![Step::child("x"), Step::child("y")],
        };
        let mut step = Step::child("a");
        step.predicates.push(Predicate::Exists(inner));
        let p = LocationPath {
            steps: vec![step, Step::child("b")],
        };
        assert_eq!(p.total_steps(), 4);
    }
}
