//! Interactive console for the XML Index Advisor.
//!
//! Three modes:
//!
//! * no arguments — the classic single-process console (`help` lists
//!   commands; pipe a script via stdin);
//! * `serve` — run the advisor daemon over TCP (see `serve --help`);
//! * `client <addr> [command…]` — talk to a running daemon, either one
//!   command per invocation or as a line-oriented shell;
//! * `fuzz` — run the differential plan-equivalence oracle
//!   (see `fuzz --help`).

use std::io::{BufRead, Write};
use xia::prelude::*;
use xia::server::Value;
use xia_cli::Session;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        _ => repl(),
    }
}

fn repl() {
    let mut session = Session::new();
    let stdin = std::io::stdin();
    let interactive = std::env::args().all(|a| a != "--quiet");
    if interactive {
        println!("xia — XML Index Advisor console. Type 'help' for commands.");
    }
    let mut lock = stdin.lock();
    let mut line = String::new();
    loop {
        if interactive {
            print!("xia> ");
            std::io::stdout().flush().ok();
        }
        line.clear();
        match lock.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        if cmd == "quit" || cmd == "exit" {
            break;
        }
        match session.exec(cmd) {
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

const SERVE_HELP: &str = "\
usage: xia-cli serve [options]
  --addr <host:port>   bind address             (default 127.0.0.1:4004)
  --xmark <docs>       load an XMark-like collection of <docs> documents
                       into 'auctions'          (default 100)
  --open <dir>         open a database snapshot instead of generating data
  --threads <n>        worker threads           (default 4)
  --budget <KiB>       advisor disk budget      (default 512)
  --interval <secs>    background advisor period (default: manual ADVISE only)
  --auto-apply         let advisor cycles create missing indexes
  --data-dir <dir>     crash-safe persistence: recover the directory's
                       snapshot+WAL at start (it wins over --xmark/--open),
                       write-ahead log every write, checkpoint + flush the
                       captured workload monitor on shutdown
  --deadline <ms>      per-request deadline; over-budget requests get a
                       clean TIMEOUT error (default: unbounded)
  --advise-budget <ms> wall budget per collection for each advisor
                       cycle's anytime search; an exhausted budget keeps
                       the best configuration found so far
                       (default 5000; 0 = search to completion)
  --max-connections <n> live-connection cap; connections past it get an
                       immediate BUSY + retry_after_ms hint (default 256)
  --shed-queue <n>     bound on connections waiting for a worker; a
                       queue at a quarter of this bound sheds expensive
                       commands, at half it sheds normal ones (default 64)
  --max-frame <KiB>    request-frame cap; oversized frames get a clean
                       error + close (default 1024)
  --tenant-pages <n>   shared index-page budget the cross-tenant
                       allocator spends over every tenant's advisor
                       frontier (default: disabled)
  --tenant-floor <n>   pages reserved per tenant before global
                       competition (default 0)
  --tenant-ceiling <n> hard cap on pages any one tenant may be granted
                       (default: none)
  --tenant-in-flight <n> per-tenant brownout: shed sheddable requests
                       once n are in flight against the same tenant
                       (default: uncapped)";

fn serve(args: &[String]) {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:4004".to_string(),
        ..Default::default()
    };
    let mut xmark_docs = 100usize;
    let mut open_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut req = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value\n{SERVE_HELP}");
                    std::process::exit(2);
                })
                .to_string()
        };
        match a.as_str() {
            "--addr" => cfg.addr = req("--addr"),
            "--xmark" => xmark_docs = req("--xmark").parse().unwrap_or(100),
            "--open" => open_dir = Some(req("--open")),
            "--threads" => cfg.threads = req("--threads").parse().unwrap_or(4),
            "--budget" => {
                cfg.budget_bytes = req("--budget").parse::<u64>().unwrap_or(512) << 10;
            }
            "--interval" => {
                let secs: f64 = req("--interval").parse().unwrap_or(30.0);
                cfg.advise_interval = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--auto-apply" => cfg.auto_apply = true,
            "--data-dir" => {
                cfg.durability = Some(xia::server::DurabilityConfig::at(req("--data-dir")));
            }
            "--deadline" => {
                let ms: u64 = req("--deadline").parse().unwrap_or(0);
                if ms > 0 {
                    cfg.request_deadline = Some(std::time::Duration::from_millis(ms));
                }
            }
            "--advise-budget" => {
                let ms: u64 = req("--advise-budget").parse().unwrap_or(5000);
                cfg.advise_budget = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--max-connections" => {
                cfg.admission.max_connections =
                    req("--max-connections").parse().unwrap_or(256).max(1);
            }
            "--shed-queue" => {
                cfg.admission.shed_queue = req("--shed-queue").parse().unwrap_or(64).max(1);
            }
            "--max-frame" => {
                let kib: usize = req("--max-frame").parse().unwrap_or(1024);
                cfg.admission.max_frame_bytes = kib.max(1) << 10;
            }
            "--tenant-pages" => {
                let n: u64 = req("--tenant-pages").parse().unwrap_or(0);
                cfg.tenant_pages = (n > 0).then_some(n);
            }
            "--tenant-floor" => {
                cfg.tenant_floor_pages = req("--tenant-floor").parse().unwrap_or(0);
            }
            "--tenant-ceiling" => {
                let n: u64 = req("--tenant-ceiling").parse().unwrap_or(0);
                cfg.tenant_ceiling_pages = (n > 0).then_some(n);
            }
            "--tenant-in-flight" => {
                let n: u64 = req("--tenant-in-flight").parse().unwrap_or(0);
                cfg.tenant_max_in_flight = (n > 0).then_some(n);
            }
            "--help" | "-h" => {
                println!("{SERVE_HELP}");
                return;
            }
            other => {
                eprintln!("unknown option '{other}'\n{SERVE_HELP}");
                std::process::exit(2);
            }
        }
    }

    let db = match open_dir {
        Some(dir) => match load_database(std::path::Path::new(&dir)) {
            Ok(db) => {
                println!(
                    "opened snapshot {dir}: {} collection(s)",
                    db.collections().count()
                );
                db
            }
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut coll = Collection::new("auctions");
            let n = XMarkGen::new(XMarkConfig {
                docs: xmark_docs,
                ..Default::default()
            })
            .populate(&mut coll);
            println!("generated {n} XMark-like documents into 'auctions'");
            let mut db = Database::new();
            db.add_collection(coll);
            db
        }
    };

    match Server::start(db, cfg) {
        Ok(server) => {
            println!(
                "xia daemon listening on {} (try: xia-cli client {} stats)",
                server.addr(),
                server.addr()
            );
            server.join();
        }
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            std::process::exit(1);
        }
    }
}

const FUZZ_HELP: &str = "\
usage: xia-cli fuzz [options]
  --seed <n>           RNG seed; same seed, same run     (default 42)
  --budget <n>         number of generated cases         (default 1000)
  --max-failures <n>   stop after n shrunk failures, 0 = no cap (default 5)
  --write-corpus <dir> write each shrunk failure as a .case file into <dir>
  --interleaved        run the interleaved-writes oracle instead: seeded
                       concurrent writers through the server's committer,
                       checked for linearizability (commit-order replay),
                       prefix-consistent snapshots, and durability parity.
                       --budget then counts rounds (default 1000 is a lot;
                       50 is a thorough sweep).
  --net-chaos          run the network-chaos oracle instead: seeded
                       concurrent clients drive a live daemon through
                       fault-injecting transports (garbage bytes,
                       slowloris, mid-frame disconnects) with squeezed
                       admission limits; checks stream integrity, no
                       wedged/leaked workers, and exact reconciliation of
                       the overload accounting. --budget then counts
                       connections (300 is a thorough sweep).
  --tenants            run the multi-tenant isolation oracle instead:
                       seeded clients interleave tenant-scoped writes
                       and reads against a live daemon; checks
                       cross-tenant isolation (marker counts reconcile,
                       foreign markers count zero), default-namespace
                       compatibility, and restart parity over each
                       tenant's durable subdirectory. --budget then
                       counts rounds (4 is a thorough sweep).
exit status: 0 when every case satisfies every invariant, 1 otherwise.";

fn fuzz(args: &[String]) {
    let mut config = xia_oracle::FuzzConfig::new(42, 1000);
    let mut corpus_dir: Option<String> = None;
    let mut interleaved = false;
    let mut net_chaos = false;
    let mut tenants = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut req = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value\n{FUZZ_HELP}");
                    std::process::exit(2);
                })
                .to_string()
        };
        fn num<T: std::str::FromStr>(name: &str, value: String) -> T {
            value.parse().unwrap_or_else(|_| {
                eprintln!("{name} needs a number, got '{value}'\n{FUZZ_HELP}");
                std::process::exit(2);
            })
        }
        match a.as_str() {
            "--seed" => config.seed = num("--seed", req("--seed")),
            "--budget" => config.budget = num("--budget", req("--budget")),
            "--max-failures" => {
                config.max_failures = num("--max-failures", req("--max-failures"));
            }
            "--write-corpus" => corpus_dir = Some(req("--write-corpus")),
            "--interleaved" => interleaved = true,
            "--net-chaos" => net_chaos = true,
            "--tenants" => tenants = true,
            "--help" | "-h" => {
                println!("{FUZZ_HELP}");
                return;
            }
            other => {
                eprintln!("unknown option '{other}'\n{FUZZ_HELP}");
                std::process::exit(2);
            }
        }
    }

    if net_chaos {
        // --budget 1000 is the shared default; 300 connections is the
        // pinned acceptance sweep, so scale the default down.
        let connections = if config.budget == 1000 {
            300
        } else {
            config.budget
        };
        let ncfg = xia_oracle::NetChaosConfig::new(config.seed, connections);
        println!(
            "xia fuzz --net-chaos: seed {} connections {} ({} clients vs {} workers, \
             max_connections {}, shed_queue {}) — checking stream integrity, \
             wedge/leak freedom, overload accounting",
            ncfg.seed,
            ncfg.connections,
            ncfg.clients,
            ncfg.workers,
            ncfg.max_connections,
            ncfg.shed_queue
        );
        let start = std::time::Instant::now();
        let report = xia_oracle::run_net_chaos(&ncfg, |done, fails| {
            println!("  {done} connections, {fails} violation(s)");
        });
        println!(
            "{} in {:.2}s",
            xia_oracle::netchaos::render_report(&report),
            start.elapsed().as_secs_f64()
        );
        for f in &report.failures {
            println!("  {f}");
        }
        if !report.ok() {
            std::process::exit(1);
        }
        return;
    }

    if tenants {
        // --budget 1000 is the shared default; each tenants round spins
        // a whole daemon (and restarts it on durable rounds), so the
        // default sweep is 4 rounds.
        let rounds = if config.budget == 1000 {
            4
        } else {
            config.budget
        };
        let tcfg = xia_oracle::TenantsConfig::new(config.seed, rounds);
        println!(
            "xia fuzz --tenants: seed {} rounds {} ({} tenants × {} clients × {} ops) — \
             checking cross-tenant isolation, default-namespace compatibility, restart parity",
            tcfg.seed, tcfg.rounds, tcfg.tenants, tcfg.clients, tcfg.ops_per_client
        );
        let start = std::time::Instant::now();
        let report = xia_oracle::run_tenants(&tcfg, |done, fails| {
            println!("  {done} rounds, {fails} failure(s)");
        });
        println!(
            "{} rounds ({} requests, {} acked inserts, {} sheds, {} restart legs) in {:.2}s, \
             {} failure(s)",
            report.rounds_run,
            report.requests_sent,
            report.inserts_acked,
            report.sheds_seen,
            report.restarts_checked,
            start.elapsed().as_secs_f64(),
            report.failures.len()
        );
        for f in &report.failures {
            println!("\n{f}");
        }
        if !report.ok() {
            std::process::exit(1);
        }
        return;
    }

    if interleaved {
        let icfg = xia_oracle::InterleaveConfig::new(config.seed, config.budget);
        println!(
            "xia fuzz --interleaved: seed {} rounds {} ({} writers × {} ops/round) — \
             checking linearizability, prefix-consistent snapshots, durability parity",
            icfg.seed, icfg.rounds, icfg.writers, icfg.ops_per_writer
        );
        let start = std::time::Instant::now();
        let every = (icfg.rounds / 10).max(1);
        let report = xia_oracle::run_interleaved(&icfg, |done, fails| {
            if done % every == 0 {
                println!("  {done} rounds, {fails} failure(s)");
            }
        });
        println!(
            "{} rounds ({} acked writes) in {:.2}s, {} failure(s)",
            report.rounds_run,
            report.ops_acked,
            start.elapsed().as_secs_f64(),
            report.failures.len()
        );
        for f in &report.failures {
            println!("\n{f}");
        }
        if !report.ok() {
            std::process::exit(1);
        }
        return;
    }

    println!(
        "xia fuzz: seed {} budget {} — checking plan equivalence, containment, \
         virtual/physical parity, durability, estimate sanity",
        config.seed, config.budget
    );
    let start = std::time::Instant::now();
    let every = (config.budget / 10).max(1);
    let report = xia_oracle::run_fuzz(&config, |done, fails| {
        if done % every == 0 {
            println!("  {done} cases, {fails} failure(s)");
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let rate = report.cases_run as f64 / secs.max(1e-9);
    println!(
        "{} cases in {secs:.2}s ({rate:.0} cases/sec), {} failure(s)",
        report.cases_run,
        report.failures.len()
    );

    for f in &report.failures {
        println!(
            "\ncase #{} violated invariant '{}':\n  {}\nshrunk reproducer:\n{}",
            f.case_number,
            f.invariant,
            f.detail,
            f.case.to_text()
        );
        if let Some(dir) = &corpus_dir {
            let dir = std::path::Path::new(dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                continue;
            }
            let name = format!(
                "seed{}_case{}_{}.case",
                config.seed, f.case_number, f.invariant
            );
            let path = dir.join(name);
            let body = format!(
                "# found by: xia fuzz --seed {} (case #{}, invariant {})\n# {}\n{}",
                config.seed,
                f.case_number,
                f.invariant,
                f.detail.replace('\n', " "),
                f.case.to_text()
            );
            match std::fs::write(&path, body) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    }
    if !report.ok() {
        std::process::exit(1);
    }
}

fn client(args: &[String]) {
    let Some(addr) = args.first() else {
        eprintln!("usage: xia-cli client <host:port> [command…]");
        std::process::exit(2);
    };
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    if args.len() > 1 {
        let line = args[1..].join(" ");
        run_client_line(&mut c, &line);
        return;
    }
    println!("connected to {addr}; one command per line, 'quit' to leave.");
    let stdin = std::io::stdin();
    let mut lock = stdin.lock();
    let mut line = String::new();
    loop {
        print!("{addr}> ");
        std::io::stdout().flush().ok();
        line.clear();
        match lock.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        run_client_line(&mut c, trimmed);
    }
}

/// Turn one shell line into a request, send it, pretty-print the answer.
fn run_client_line(c: &mut Client, line: &str) {
    let request = match build_request(line) {
        Ok(r) => r,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    match c.call(&request) {
        Ok(resp) => print_response(&resp),
        Err(e) => println!("transport error: {e}"),
    }
}

fn build_request(line: &str) -> Result<Value, String> {
    if line.starts_with('{') {
        return xia::server::json::parse(line).map_err(|e| e.to_string());
    }
    // `@<tenant> <command…>` scopes any command to a named tenant.
    let (tenant, line) = match line.strip_prefix('@') {
        Some(rest) => match rest.find(char::is_whitespace) {
            Some(i) => (Some(&rest[..i]), rest[i..].trim_start()),
            None => return Err("usage: @<tenant> <command…>".into()),
        },
        None => (None, line),
    };
    let (word, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let mut fields = vec![("cmd", Value::str(word))];
    if let Some(t) = tenant {
        fields.push(("tenant", Value::str(t)));
    }
    match word {
        "query" | "explain" | "profile" => {
            if rest.is_empty() {
                return Err(format!("usage: {word} <query>"));
            }
            fields.push(("q", Value::str(rest)));
        }
        "create-index" | "create_index" => {
            let (pattern, dtype) = match rest.rfind(char::is_whitespace) {
                Some(i) => (&rest[..i], rest[i..].trim()),
                None => (rest, "VARCHAR"),
            };
            if pattern.is_empty() {
                return Err("usage: create-index <pattern> [VARCHAR|DOUBLE]".into());
            }
            fields.push(("pattern", Value::str(pattern)));
            fields.push(("type", Value::str(dtype)));
        }
        "drop-index" | "drop_index" => {
            let id: f64 = rest
                .trim_start_matches("idx")
                .parse()
                .map_err(|_| "usage: drop-index <id>")?;
            fields.push(("id", Value::num(id)));
        }
        "recommend" => {
            // recommend [KiB] [strategy] [--budget-ms <ms>]
            let usage = "usage: recommend [KiB] [strategy] [--budget-ms <ms>]";
            let mut positional = 0;
            let mut parts = rest.split_whitespace();
            while let Some(part) = parts.next() {
                if part == "--budget-ms" {
                    let ms: f64 = parts.next().ok_or(usage)?.parse().map_err(|_| usage)?;
                    fields.push(("budget_ms", Value::num(ms)));
                    continue;
                }
                match positional {
                    0 => {
                        let kib: f64 = part.parse().map_err(|_| usage)?;
                        fields.push(("budget_kib", Value::num(kib)));
                    }
                    1 => fields.push(("strategy", Value::str(part))),
                    _ => return Err(usage.into()),
                }
                positional += 1;
            }
        }
        "tenant" => {
            // `tenant` lists the namespaces; `tenant <name> [coll…]`
            // creates one (idempotent) with the given collections.
            let mut parts = rest.split_whitespace();
            if let Some(name) = parts.next() {
                fields.push(("name", Value::str(name)));
                let colls: Vec<Value> = parts.map(Value::str).collect();
                if !colls.is_empty() {
                    fields.push(("collections", Value::Arr(colls)));
                }
            }
        }
        _ => {
            // ping / stats / advise / workload / shutdown — bare commands.
            if !rest.is_empty() {
                return Err(format!("'{word}' takes no arguments here"));
            }
        }
    }
    Ok(Value::obj(fields))
}

fn print_response(resp: &Value) {
    // Prefer a human-readable field when the server provides one. QUERY
    // responses also carry a one-token "plan" — keep those as JSON so
    // results and counters stay visible.
    for field in ["text", "profile"] {
        if let Some(s) = resp.get_str(field) {
            print!("{s}");
            if !s.ends_with('\n') {
                println!();
            }
            return;
        }
    }
    if resp.get("results").is_none() {
        if let Some(s) = resp.get_str("plan") {
            println!("{s}");
            return;
        }
    }
    println!("{resp}");
}
