//! Interactive console for the XML Index Advisor.
//!
//! Run `cargo run -p xia-cli --release`, then `help` for commands, or
//! pipe a script: `echo "demo" | cargo run -p xia-cli --release`.

use std::io::{BufRead, Write};
use xia_cli::Session;

fn main() {
    let mut session = Session::new();
    let stdin = std::io::stdin();
    let interactive = std::env::args().all(|a| a != "--quiet");
    if interactive {
        println!("xia — XML Index Advisor console. Type 'help' for commands.");
    }
    let mut lock = stdin.lock();
    let mut line = String::new();
    loop {
        if interactive {
            print!("xia> ");
            std::io::stdout().flush().ok();
        }
        line.clear();
        match lock.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        if cmd == "quit" || cmd == "exit" {
            break;
        }
        match session.exec(cmd) {
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
