//! The advisor console's command engine.
//!
//! The paper demonstrates its system through a visual client that drives
//! the two EXPLAIN modes, shows the candidate DAG and search traversal,
//! analyzes recommendations, and creates the chosen indexes. [`Session`]
//! is that client as a text console: every command returns its output as
//! a `String`, which makes the whole surface unit-testable and pipeable.

use std::fmt::Write as _;
use xia::advisor::analysis::measure_execution;
use xia::advisor::{generalize, generate_basic_candidates, GeneralizationConfig};
use xia::prelude::*;

/// One interactive advisor session.
pub struct Session {
    db: Database,
    current: Option<String>,
    workload: Workload,
    advisor: Advisor,
    last_rec: Option<Recommendation>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    pub fn new() -> Session {
        Session {
            db: Database::new(),
            current: None,
            workload: Workload::new(),
            advisor: Advisor::default(),
            last_rec: None,
        }
    }

    /// Execute one command line; returns its output or an error message.
    pub fn exec(&mut self, line: &str) -> Result<String, String> {
        let (cmd, rest) = split_word(line);
        match cmd {
            "help" => Ok(HELP.to_string()),
            "demo" => self.demo(),
            "load" => self.load(rest),
            "use" => self.use_collection(rest),
            "stats" => self.stats(),
            "workload" => self.workload_cmd(rest),
            "enumerate" => self.enumerate(rest),
            "dag" => self.dag(),
            "recommend" => self.recommend(rest),
            "analyze" => self.analyze(),
            "create" => self.create(),
            "indexes" => self.indexes(),
            "review" => self.review(),
            "drop" => self.drop(rest),
            "explain" => self.explain_cmd(rest),
            "run" => self.run(rest),
            "save" => self.save(rest),
            "open" => self.open(rest),
            other => Err(format!("unknown command '{other}' (try 'help')")),
        }
    }

    fn collection(&self) -> Result<&Collection, String> {
        let name = self
            .current
            .as_ref()
            .ok_or("no collection loaded (try 'load xmark 100')")?;
        self.db
            .collection(name)
            .ok_or_else(|| format!("collection '{name}' missing"))
    }

    fn collection_mut(&mut self) -> Result<&mut Collection, String> {
        let name = self
            .current
            .clone()
            .ok_or("no collection loaded (try 'load xmark 100')")?;
        self.db
            .collection_mut(&name)
            .ok_or_else(|| format!("collection '{name}' missing"))
    }

    fn load(&mut self, rest: &str) -> Result<String, String> {
        let (what, arg) = split_word(rest);
        match what {
            "xmark" => {
                let docs: usize = arg.trim().parse().unwrap_or(100);
                self.db.create_collection("auctions");
                let coll = self.db.collection_mut("auctions").expect("just created");
                let n = XMarkGen::new(XMarkConfig {
                    docs,
                    ..Default::default()
                })
                .populate(coll);
                self.current = Some("auctions".into());
                Ok(format!(
                    "loaded {n} XMark-like documents into 'auctions' ({} nodes, {} paths)",
                    coll.stats().total_nodes,
                    coll.stats().path_count()
                ))
            }
            "tpox" => {
                TpoxGen::new(TpoxConfig::default()).populate_all(&mut self.db);
                self.current = Some("order".into());
                Ok(
                    "loaded TPoX-like collections: order, custacc, security (current: order)"
                        .to_string(),
                )
            }
            other => Err(format!("unknown dataset '{other}' (xmark <docs> | tpox)")),
        }
    }

    fn use_collection(&mut self, rest: &str) -> Result<String, String> {
        let name = rest.trim();
        if self.db.collection(name).is_none() {
            return Err(format!("no collection '{name}'"));
        }
        self.current = Some(name.to_string());
        self.workload = Workload::new();
        self.last_rec = None;
        Ok(format!("using collection '{name}' (workload cleared)"))
    }

    fn stats(&self) -> Result<String, String> {
        let coll = self.collection()?;
        let s = coll.stats();
        let mut out = format!(
            "collection '{}': {} documents, {} nodes, {} data pages, {} distinct paths\n",
            coll.name(),
            s.doc_count,
            s.total_nodes,
            s.data_pages(),
            s.path_count()
        );
        out.push_str("top paths by node count:\n");
        let mut entries: Vec<_> = s.entries().iter().collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.stats.count));
        for e in entries.iter().take(10) {
            let path: String = e
                .labels
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    let at = if e.is_attribute && i + 1 == e.labels.len() {
                        "@"
                    } else {
                        ""
                    };
                    format!("/{at}{l}")
                })
                .collect();
            let _ = writeln!(out, "  {:>8}  {}", e.stats.count, path);
        }
        Ok(out)
    }

    fn workload_cmd(&mut self, rest: &str) -> Result<String, String> {
        let (sub, arg) = split_word(rest);
        let coll_name = self.current.clone().unwrap_or_else(|| "auctions".into());
        match sub {
            "add" => {
                self.workload
                    .add_query(arg.trim(), &coll_name, 1.0)
                    .map_err(|e| e.to_string())?;
                Ok(format!("added query #{} (freq 1)", self.workload.query_count()))
            }
            "addf" => {
                let (freq, q) = split_word(arg);
                let freq: f64 = freq.parse().map_err(|_| "usage: workload addf <freq> <query>")?;
                self.workload
                    .add_query(q.trim(), &coll_name, freq)
                    .map_err(|e| e.to_string())?;
                Ok(format!("added query #{} (freq {freq})", self.workload.query_count()))
            }
            "insert" => {
                let freq: f64 = arg.trim().parse().map_err(|_| "usage: workload insert <freq>")?;
                let sample = {
                    let coll = self.collection()?;
                    coll.documents()
                        .next()
                        .map(|(_, d)| d.clone())
                        .ok_or("collection is empty")?
                };
                self.workload.add_insert(sample, freq);
                Ok(format!("added insert statement (freq {freq})"))
            }
            "list" => {
                let mut out = String::new();
                for (i, stmt) in self.workload.statements.iter().enumerate() {
                    use xia::advisor::StatementKind::*;
                    let desc = match &stmt.kind {
                        Query(q) => format!("[{}] {}", q.language, q.text),
                        Insert { .. } => "INSERT <sample document>".to_string(),
                        Delete { .. } => "DELETE <sample document>".to_string(),
                    };
                    let _ = writeln!(out, "{i:>3}. (freq {:>8}) {desc}", stmt.frequency);
                }
                if out.is_empty() {
                    out = "workload is empty".to_string();
                }
                Ok(out)
            }
            "clear" => {
                self.workload = Workload::new();
                self.last_rec = None;
                Ok("workload cleared".to_string())
            }
            "load" => {
                let path = arg.trim();
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let sample = self
                    .collection()
                    .ok()
                    .and_then(|c| c.documents().next().map(|(_, d)| d.clone()));
                let w = Workload::parse(&text, &coll_name, sample.as_ref())
                    .map_err(|e| e.to_string())?;
                let n = w.statements.len();
                self.workload = w;
                self.last_rec = None;
                Ok(format!("loaded {n} statements from {path}"))
            }
            "save" => {
                let path = arg.trim();
                std::fs::write(path, self.workload.to_file_format())
                    .map_err(|e| format!("{path}: {e}"))?;
                Ok(format!("saved {} statements to {path}", self.workload.statements.len()))
            }
            _ => Err("usage: workload add <query> | addf <freq> <query> | insert <freq> | list | clear | load <file> | save <file>".into()),
        }
    }

    fn enumerate(&self, rest: &str) -> Result<String, String> {
        let mut out = String::new();
        if rest.trim().is_empty() {
            for (q, _) in self.workload.queries() {
                let _ = writeln!(out, "query: {}", q.text);
                for cand in enumerate_indexes(q) {
                    let _ = writeln!(out, "  -> {cand}");
                }
            }
            if out.is_empty() {
                return Err("workload is empty; 'enumerate <query>' works too".into());
            }
        } else {
            let coll_name = self.current.clone().unwrap_or_else(|| "auctions".into());
            let q = compile(rest.trim(), &coll_name).map_err(|e| e.to_string())?;
            for cand in enumerate_indexes(&q) {
                let _ = writeln!(out, "-> {cand}");
            }
            if out.is_empty() {
                out = "no indexable patterns in this query".into();
            }
        }
        Ok(out)
    }

    fn dag(&self) -> Result<String, String> {
        let coll = self.collection()?;
        let basics = generate_basic_candidates(coll, &self.workload);
        if basics.is_empty() {
            return Err("no candidates (is the workload empty?)".into());
        }
        let dag = generalize(coll, &basics, &GeneralizationConfig::default());
        Ok(format!(
            "{} basic candidates, {} DAG nodes, {} roots\n{}",
            basics.len(),
            dag.nodes.len(),
            dag.roots().len(),
            dag.render_text()
        ))
    }

    fn recommend(&mut self, rest: &str) -> Result<String, String> {
        let (budget_s, strat_s) = split_word(rest);
        let budget_kib: u64 = budget_s
            .parse()
            .map_err(|_| "usage: recommend <budget-KiB> [greedy|topdown|baseline]")?;
        let strategy = match strat_s.trim() {
            "" | "greedy" => SearchStrategy::GreedyHeuristic,
            "topdown" | "top-down" => SearchStrategy::TopDown,
            "baseline" => SearchStrategy::GreedyBaseline,
            other => return Err(format!("unknown strategy '{other}'")),
        };
        if self.workload.query_count() == 0 {
            return Err("workload is empty".into());
        }
        let rec = {
            let coll = self.collection()?;
            self.advisor
                .recommend(coll, &self.workload, budget_kib << 10, strategy)
        };
        let mut out = rec.render();
        out.push_str("\nsearch trace:\n");
        for line in &rec.outcome.trace {
            let _ = writeln!(out, "  {line}");
        }
        let _ = writeln!(out, "\nwhat-if engine: {}", rec.outcome.stats.render());
        out.push_str("\nDDL ('create' builds these):\n");
        for ddl in rec.ddl(self.current.as_deref().unwrap_or("collection")) {
            let _ = writeln!(out, "  {ddl};");
        }
        self.last_rec = Some(rec);
        Ok(out)
    }

    fn analyze(&self) -> Result<String, String> {
        let rec = self.last_rec.as_ref().ok_or("run 'recommend' first")?;
        let coll = self.collection()?;
        let report = analyze(&self.advisor, coll, &self.workload, rec, &[]);
        Ok(report.render())
    }

    fn create(&mut self) -> Result<String, String> {
        let rec = self.last_rec.clone().ok_or("run 'recommend' first")?;
        let before = {
            let coll = self.collection()?;
            measure_execution(coll, &self.workload)
        };
        let workload = self.workload.clone();
        let coll = self.collection_mut()?;
        let entries = Advisor::create_indexes(&rec, coll);
        let after = measure_execution(coll, &workload);
        Ok(format!(
            "created {} indexes ({entries} entries)\nworkload execution: {:.2} ms ({} docs) -> {:.2} ms ({} docs)",
            rec.indexes.len(),
            before.seconds * 1e3,
            before.docs_evaluated,
            after.seconds * 1e3,
            after.docs_evaluated
        ))
    }

    fn indexes(&self) -> Result<String, String> {
        let coll = self.collection()?;
        if coll.indexes().is_empty() {
            return Ok("no physical indexes".to_string());
        }
        let mut out = String::new();
        for ix in coll.indexes() {
            let _ = writeln!(
                out,
                "{}  entries {:>8}  pages {:>6}  {}",
                ix.definition(),
                ix.len(),
                ix.page_count(),
                ix.definition().ddl(coll.name())
            );
        }
        Ok(out)
    }

    fn review(&self) -> Result<String, String> {
        let coll = self.collection()?;
        if coll.indexes().is_empty() {
            return Ok("no physical indexes to review".into());
        }
        if self.workload.query_count() == 0 {
            return Err("workload is empty; review needs queries to measure against".into());
        }
        let reviews =
            review_existing_indexes(coll, &self.advisor.config.cost_model, &self.workload);
        Ok(render_reviews(&reviews))
    }

    fn drop(&mut self, rest: &str) -> Result<String, String> {
        let id: u32 = rest
            .trim()
            .trim_start_matches("idx")
            .parse()
            .map_err(|_| "usage: drop <index-id>")?;
        let coll = self.collection_mut()?;
        if coll.drop_index(IndexId(id)) {
            Ok(format!("dropped idx{id}"))
        } else {
            Err(format!("no index idx{id}"))
        }
    }

    fn save(&self, rest: &str) -> Result<String, String> {
        let dir = rest.trim();
        if dir.is_empty() {
            return Err("usage: save <directory>".into());
        }
        save_database(&self.db, std::path::Path::new(dir)).map_err(|e| e.to_string())?;
        Ok(format!(
            "saved {} collection(s) to {dir}",
            self.db.collections().count()
        ))
    }

    fn open(&mut self, rest: &str) -> Result<String, String> {
        let dir = rest.trim();
        if dir.is_empty() {
            return Err("usage: open <directory>".into());
        }
        let db = load_database(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
        let names: Vec<String> = db.collections().map(|c| c.name().to_string()).collect();
        self.db = db;
        self.current = names.first().cloned();
        self.workload = Workload::new();
        self.last_rec = None;
        Ok(format!(
            "opened {dir}: collections {names:?} (current: {:?})",
            self.current
        ))
    }

    fn explain_cmd(&self, rest: &str) -> Result<String, String> {
        let coll = self.collection()?;
        let q = compile(rest.trim(), coll.name()).map_err(|e| e.to_string())?;
        let ex = explain(coll, &CostModel::default(), &q);
        Ok(ex.text)
    }

    fn run(&self, rest: &str) -> Result<String, String> {
        // `run profile <query>` executes with per-operator instrumentation.
        let (first, tail) = split_word(rest);
        if first == "profile" {
            return self.run_profiled(tail);
        }
        let coll = self.collection()?;
        let q = compile(rest.trim(), coll.name()).map_err(|e| e.to_string())?;
        let ex = explain(coll, &CostModel::default(), &q);
        let start = std::time::Instant::now();
        let (rows, stats) = execute(coll, &q, &ex.plan).map_err(|e| e.to_string())?;
        let elapsed = start.elapsed().as_secs_f64();
        let mut out = format!(
            "{} results in {:.2} ms ({} docs evaluated, {} index entries scanned)\n",
            rows.len(),
            elapsed * 1e3,
            stats.docs_evaluated,
            stats.entries_scanned
        );
        for (doc, node) in rows.iter().take(5) {
            let d = coll.get(*doc).expect("result doc exists");
            let _ = writeln!(
                out,
                "  doc {:>4} {}: {}",
                doc.0,
                d.name(*node),
                truncate(&d.string_value(*node), 60)
            );
        }
        if rows.len() > 5 {
            let _ = writeln!(out, "  … {} more", rows.len() - 5);
        }
        Ok(out)
    }

    /// `run profile <query>`: execute and print the plan operator tree
    /// with estimated vs actual cardinalities and per-operator wall time.
    fn run_profiled(&self, rest: &str) -> Result<String, String> {
        if rest.trim().is_empty() {
            return Err("usage: run profile <query>".into());
        }
        let coll = self.collection()?;
        let q = compile(rest.trim(), coll.name()).map_err(|e| e.to_string())?;
        let ex = explain(coll, &CostModel::default(), &q);
        let profile = profile_execute(coll, &q, &ex.plan).map_err(|e| e.to_string())?;
        Ok(profile.render())
    }

    /// Scripted end-to-end walkthrough (the demo's storyline in one shot).
    fn demo(&mut self) -> Result<String, String> {
        let mut out = String::new();
        for cmd in [
            "load xmark 150",
            "workload add /site/regions/africa/item/quantity",
            "workload add /site/regions/namerica/item/quantity",
            "workload add /site/regions/samerica/item/price",
            "workload add //person[profile/age > 70]/name",
            "workload add //closed_auction[price >= 700]/date",
            "enumerate",
            "dag",
            "recommend 256 greedy",
            "analyze",
            "create",
        ] {
            let _ = writeln!(out, "\nxia> {cmd}");
            match self.exec(cmd) {
                Ok(o) => out.push_str(&o),
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                }
            }
        }
        Ok(out)
    }
}

fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        let cut = s.char_indices().take_while(|(i, _)| *i < n).count();
        format!(
            "{}…",
            &s[..s.char_indices().nth(cut).map_or(s.len(), |(i, _)| i)]
        )
    }
}

const HELP: &str = "\
commands:
  demo                          scripted end-to-end walkthrough
  load xmark <docs> | tpox      generate and load benchmark data
  use <collection>              switch collection (clears workload)
  stats                         collection statistics / path dictionary
  workload add <query>          add a query (XPath, XQuery or SQL/XML)
  workload addf <freq> <query>  add a query with a frequency
  workload insert <freq>        add an insert statement (maintenance cost)
  workload list | clear         inspect / reset the workload
  workload load|save <file>     read/write a workload file ([freq;]query per line)
  enumerate [<query>]           Enumerate Indexes mode (basic candidates)
  dag                           generalization DAG for the workload
  recommend <KiB> [greedy|topdown|baseline]
  analyze                       no-index / recommended / overtrained costs
  create                        build the recommended indexes, time before/after
  indexes                       list physical indexes
  review                        keep/DROP verdict for each existing index
  drop <id>                     drop a physical index
  explain <query>               optimizer plan under current indexes
  run <query>                   execute a query, show results and counters
  run profile <query>           execute with per-operator est/actual rows + timings
  save <dir> | open <dir>       snapshot / restore the whole database
  quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(s: &mut Session, cmd: &str) -> String {
        s.exec(cmd)
            .unwrap_or_else(|e| panic!("'{cmd}' failed: {e}"))
    }

    #[test]
    fn full_session_walkthrough() {
        let mut s = Session::new();
        let out = ok(&mut s, "load xmark 60");
        assert!(out.contains("60 XMark-like documents"));

        ok(&mut s, "workload add /site/regions/africa/item/quantity");
        ok(&mut s, "workload add //closed_auction[price >= 700]/date");
        let out = ok(&mut s, "workload list");
        assert!(out.contains("closed_auction"));

        let out = ok(&mut s, "enumerate");
        assert!(out.contains("XMLPATTERN"));

        let out = ok(&mut s, "dag");
        assert!(out.contains("DAG nodes"));

        let out = ok(&mut s, "recommend 512 greedy");
        assert!(out.contains("Recommendation"));
        assert!(out.contains("CREATE INDEX"));

        let out = ok(&mut s, "analyze");
        assert!(out.contains("no-index"));

        let out = ok(&mut s, "create");
        assert!(out.contains("created"));

        let out = ok(&mut s, "indexes");
        assert!(out.contains("entries"));

        let out = ok(&mut s, "explain //closed_auction[price >= 700]/date");
        assert!(out.contains("XISCAN"), "expected an index plan: {out}");

        let out = ok(&mut s, "run //closed_auction[price >= 700]/date");
        assert!(out.contains("results"));

        let out = ok(&mut s, "run profile //closed_auction[price >= 700]/date");
        assert!(out.contains("XISCAN"), "profiled index plan: {out}");
        assert!(out.contains("est "), "estimated rows shown: {out}");
        assert!(out.contains("act "), "actual rows shown: {out}");
        assert!(out.contains("total:"), "totals line shown: {out}");
    }

    #[test]
    fn run_profile_matches_plain_run_counts() {
        let mut s = Session::new();
        ok(&mut s, "load xmark 40");
        let plain = ok(&mut s, "run /site/regions/africa/item/quantity");
        let profiled = ok(&mut s, "run profile /site/regions/africa/item/quantity");
        // Same result cardinality through both paths.
        let n = plain.split(" results").next().unwrap().trim().to_string();
        assert!(
            profiled.contains(&format!("act {n},")),
            "root actual rows must equal plain run's result count ({n}): {profiled}"
        );
        assert!(s.exec("run profile").is_err(), "query required");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut s = Session::new();
        assert!(s.exec("stats").is_err());
        assert!(s.exec("nonsense").is_err());
        assert!(s.exec("recommend notanumber").is_err());
        s.exec("load xmark 5").unwrap();
        assert!(s.exec("workload add ///bad").is_err());
        assert!(s.exec("recommend 100").is_err(), "empty workload");
        assert!(s.exec("drop idx99").is_err());
        assert!(s.exec("use nowhere").is_err());
    }

    #[test]
    fn tpox_loading_and_switching() {
        let mut s = Session::new();
        ok(&mut s, "load tpox");
        let out = ok(&mut s, "stats");
        assert!(out.contains("'order'"));
        ok(&mut s, "use custacc");
        let out = ok(&mut s, "stats");
        assert!(out.contains("'custacc'"));
        ok(&mut s, "workload add //Account[Balance > 900000]/@id");
        let out = ok(&mut s, "recommend 512 topdown");
        assert!(out.contains("Recommendation"));
    }

    #[test]
    fn insert_statements_affect_recommendation() {
        let mut s = Session::new();
        ok(&mut s, "load xmark 60");
        ok(&mut s, "workload add /site/regions/africa/item/quantity");
        let with_reads = ok(&mut s, "recommend 512");
        assert!(with_reads.contains("idx"));
        ok(&mut s, "workload insert 1000000");
        let with_updates = ok(&mut s, "recommend 512");
        assert!(
            !with_updates.contains("CREATE INDEX") || with_updates.contains("0.0% improvement"),
            "extreme update rate should suppress indexes: {with_updates}"
        );
    }

    #[test]
    fn review_flags_unused_indexes() {
        let mut s = Session::new();
        ok(&mut s, "load xmark 40");
        ok(&mut s, "workload add //closed_auction[price >= 700]/date");
        ok(&mut s, "recommend 512");
        ok(&mut s, "create");
        // Add an index nothing uses.
        {
            let coll = s.collection_mut().unwrap();
            coll.create_index(IndexDefinition::new(
                IndexId(77),
                LinearPath::parse("//person/phone").unwrap(),
                DataType::Varchar,
            ));
        }
        let out = ok(&mut s, "review");
        assert!(out.contains("DROP"), "{out}");
        assert!(out.contains("keep"), "{out}");
    }

    #[test]
    fn workload_file_round_trip() {
        let path = std::env::temp_dir().join(format!("xia_wl_{}.txt", std::process::id()));
        let mut s = Session::new();
        ok(&mut s, "load xmark 5");
        ok(&mut s, "workload add //item/price");
        ok(&mut s, "workload addf 9 //person/name");
        let out = ok(&mut s, &format!("workload save {}", path.display()));
        assert!(out.contains("saved 2"));
        ok(&mut s, "workload clear");
        let out = ok(&mut s, &format!("workload load {}", path.display()));
        assert!(out.contains("loaded 2"));
        let out = ok(&mut s, "workload list");
        assert!(out.contains("//person/name"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_open_round_trip() {
        let dir = std::env::temp_dir().join(format!("xia_cli_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = Session::new();
        ok(&mut s, "load xmark 10");
        ok(&mut s, "workload add /site/regions/africa/item/quantity");
        ok(&mut s, "recommend 512");
        ok(&mut s, "create");
        let out = ok(&mut s, &format!("save {}", dir.display()));
        assert!(out.contains("saved"));

        let mut s2 = Session::new();
        let out = ok(&mut s2, &format!("open {}", dir.display()));
        assert!(out.contains("auctions"));
        let out = ok(&mut s2, "indexes");
        assert!(out.contains("entries"), "indexes restored: {out}");
        let out = ok(&mut s2, "run /site/regions/africa/item/quantity");
        assert!(out.contains("results"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn demo_command_runs_end_to_end() {
        let mut s = Session::new();
        let out = ok(&mut s, "demo");
        assert!(out.contains("recommend 256 greedy"));
        assert!(out.contains("Recommendation"));
        assert!(out.contains("created"));
    }
}
