//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seedable
//! small RNG (`rngs::SmallRng`), `Rng::gen_range` over half-open ranges
//! of the common numeric types, and `Rng::gen_bool`. The generator is
//! splitmix64 — deterministic across platforms for a given seed, which
//! is all the workload generators need (they fix seeds for
//! reproducibility). Stream values differ from upstream `rand`, so
//! generated datasets are stable within this repo but not byte-identical
//! to ones produced with the real crate.

use std::ops::Range;

/// Core entropy source: 64 random bits per step.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range (`rand`'s
/// `SampleUniform`, collapsed to one method).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Ranges a value can be sampled from (`rand`'s `SampleRange`). The
/// single blanket impl matters: it lets inference resolve unsuffixed
/// literals like `gen_range(0.5..1.5)` exactly as the real crate does.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, rng)
    }
}

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Pre-whiten so seeds 0 and 1 do not yield correlated streams.
            let mut rng = SmallRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            };
            rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5..1.5f64);
            assert!((0.5..1.5).contains(&f));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
