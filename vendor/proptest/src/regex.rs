//! Tiny regex-to-generator for `&str` strategies.
//!
//! Supports the subset the workspace's tests use: literal characters,
//! escaped characters, character classes with ranges (`[a-z0-9_]`,
//! `[ -~]`), groups, alternation, and the `{m}`, `{m,n}`, `?`, `*`, `+`
//! quantifiers. Unsupported syntax panics with the offending pattern so
//! a test author notices immediately.

use super::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// Alternation of sequences.
    Alt(Vec<Vec<(Node, Quant)>>),
    Class(Vec<(char, char)>),
    Literal(char),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const QUANT_ONE: Quant = Quant { min: 1, max: 1 };
/// Cap for unbounded quantifiers (`*`, `+`).
const UNBOUNDED_CAP: u32 = 8;

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        pattern,
    };
    let node = p.parse_alt();
    if p.pos != p.chars.len() {
        panic!(
            "unsupported regex strategy {pattern:?}: trailing input at {}",
            p.pos
        );
    }
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(alts) => {
            let seq = &alts[rng.below(alts.len())];
            for (n, q) in seq {
                let reps = q.min + (rng.below((q.max - q.min + 1) as usize) as u32);
                for _ in 0..reps {
                    emit(n, rng, out);
                }
            }
        }
        Node::Class(ranges) => {
            // Weight by range width so e.g. [a-z0-9_] is roughly uniform
            // over its 37 characters.
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.below(total as usize) as u32;
            for (lo, hi) in ranges {
                let w = *hi as u32 - *lo as u32 + 1;
                if pick < w {
                    out.push(char::from_u32(*lo as u32 + pick).expect("class range is valid"));
                    return;
                }
                pick -= w;
            }
            unreachable!("class pick within total weight");
        }
        Node::Literal(c) => out.push(*c),
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "unsupported regex strategy {:?}: {what} at position {}",
            self.pattern, self.pos
        );
    }

    fn parse_alt(&mut self) -> Node {
        let mut alts = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_seq());
        }
        Node::Alt(alts)
    }

    fn parse_seq(&mut self) -> Vec<(Node, Quant)> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            let quant = self.parse_quant();
            seq.push((atom, quant));
        }
        seq
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump() {
            '(' => {
                let node = self.parse_alt();
                if self.peek() != Some(')') {
                    self.fail("unclosed group");
                }
                self.bump();
                node
            }
            '[' => self.parse_class(),
            '\\' => {
                if self.peek().is_none() {
                    self.fail("dangling escape");
                }
                match self.bump() {
                    'n' => Node::Literal('\n'),
                    't' => Node::Literal('\t'),
                    c => Node::Literal(c),
                }
            }
            '.' => Node::Class(vec![(' ', '~')]),
            c @ ('*' | '+' | '?' | '{') => {
                self.fail(&format!("quantifier {c:?} with nothing to repeat"))
            }
            c => Node::Literal(c),
        }
    }

    fn parse_class(&mut self) -> Node {
        if self.peek() == Some('^') {
            self.fail("negated classes are not supported");
        }
        let mut ranges = Vec::new();
        loop {
            let Some(c) = self.peek() else {
                self.fail("unclosed character class")
            };
            if c == ']' {
                self.bump();
                break;
            }
            let lo = match self.bump() {
                '\\' => self.bump(),
                c => c,
            };
            // `a-z` range, unless `-` is the last char before `]`.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = match self.bump() {
                    '\\' => self.bump(),
                    c => c,
                };
                if hi < lo {
                    self.fail("inverted class range");
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            self.fail("empty character class");
        }
        Node::Class(ranges)
    }

    fn parse_quant(&mut self) -> Quant {
        match self.peek() {
            Some('?') => {
                self.bump();
                Quant { min: 0, max: 1 }
            }
            Some('*') => {
                self.bump();
                Quant {
                    min: 0,
                    max: UNBOUNDED_CAP,
                }
            }
            Some('+') => {
                self.bump();
                Quant {
                    min: 1,
                    max: UNBOUNDED_CAP,
                }
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number();
                let max = match self.peek() {
                    Some(',') => {
                        self.bump();
                        self.parse_number()
                    }
                    _ => min,
                };
                if self.peek() != Some('}') {
                    self.fail("unclosed quantifier");
                }
                self.bump();
                if max < min {
                    self.fail("quantifier max below min");
                }
                Quant { min, max }
            }
            _ => QUANT_ONE,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            self.fail("expected a number in quantifier");
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .expect("digits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pat: &str, seed: u64) -> String {
        generate(pat, &mut TestRng::from_seed(seed))
    }

    #[test]
    fn shapes() {
        for seed in 0..100 {
            let s = gen("[a-z][a-z0-9_]{0,8}", seed);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            let t = gen("[ -~]{1,20}", seed);
            assert!((1..=20).contains(&t.len()), "{t:?}");
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let p = gen("[a-z]{1,5}(/[a-z]{1,5}){0,3}", seed);
            for part in p.split('/') {
                assert!((1..=5).contains(&part.len()), "{p:?}");
            }
            let a = gen("foo|bar", seed);
            assert!(a == "foo" || a == "bar");
            let e = gen(r"a\.b", seed);
            assert_eq!(e, "a.b");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn negated_class_panics() {
        gen("[^a]", 1);
    }
}
