//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of proptest's API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_filter_map` / `prop_recursive`, strategies for ranges, tuples,
//! [`Just`], regex-literal `&str` strategies, `prop::collection::vec`,
//! and the `proptest!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case number; cases
//!   are generated from a deterministic per-(test, case) seed, so every
//!   failure reproduces exactly on re-run.
//! * **Regex strategies** support the subset used here: literals, char
//!   classes (`[a-z0-9_]`, `[ -~]`), groups, `|`, and the `{m}`, `{m,n}`,
//!   `?`, `*`, `+` quantifiers.
//! * `.proptest-regressions` files are ignored.

use std::rc::Rc;

mod regex;

// ---------------------------------------------------------------------------
// Deterministic RNG.
// ---------------------------------------------------------------------------

/// Splitmix64-based generator; seeded per (test name, case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        let mut rng = TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        rng.next_u64();
        rng
    }

    /// Seed for one test case: FNV-1a over the test name, mixed with the
    /// case index.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and the boxed strategy every combinator returns.
// ---------------------------------------------------------------------------

/// How many times filters retry before giving up on a strategy.
const MAX_FILTER_RETRIES: usize = 10_000;

/// A generator of test values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a clonable, reference-counted strategy.
    fn boxed(self) -> Strat<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        Strat::new(move |rng| inner.generate(rng))
    }

    fn prop_map<U, F>(self, f: F) -> Strat<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        Strat::new(move |rng| f(inner.generate(rng)))
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Strat<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let inner = self;
        let reason = reason.into();
        Strat::new(move |rng| {
            for _ in 0..MAX_FILTER_RETRIES {
                let v = inner.generate(rng);
                if f(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {reason}");
        })
    }

    fn prop_filter_map<U, F>(self, reason: impl Into<String>, f: F) -> Strat<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> Option<U> + 'static,
    {
        let inner = self;
        let reason = reason.into();
        Strat::new(move |rng| {
            for _ in 0..MAX_FILTER_RETRIES {
                if let Some(u) = f(inner.generate(rng)) {
                    return u;
                }
            }
            panic!("prop_filter_map exhausted retries: {reason}");
        })
    }

    fn prop_flat_map<S2, F>(self, f: F) -> Strat<S2::Value>
    where
        Self: Sized + 'static,
        S2: Strategy + 'static,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        let inner = self;
        Strat::new(move |rng| f(inner.generate(rng)).generate(rng))
    }

    /// Depth-bounded recursive strategy. `depth` levels are unrolled at
    /// construction time; the innermost level generates leaves only, so
    /// generation always terminates. The `_desired_size` and
    /// `_expected_branch_size` hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Strat<Self::Value>
    where
        Self: Sized + Clone + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(Strat<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let deeper = recurse(strat).boxed();
            // Bias toward recursion; the unrolling depth still bounds size.
            strat = Strat::new(move |rng| {
                if rng.unit_f64() < 0.25 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        strat
    }
}

/// A clonable type-erased strategy (`BoxedStrategy` upstream).
pub struct Strat<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for Strat<T> {
    fn clone(&self) -> Self {
        Strat {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strat<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Strat<T> {
        Strat { gen: Rc::new(f) }
    }
}

impl<T> Strategy for Strat<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Upstream name for the same thing.
pub type BoxedStrategy<T> = Strat<T>;

/// Uniform choice among type-erased alternatives (used by `prop_oneof!`).
pub fn one_of<T: 'static>(alts: Vec<Strat<T>>) -> Strat<T> {
    assert!(
        !alts.is_empty(),
        "prop_oneof! needs at least one alternative"
    );
    Strat::new(move |rng| alts[rng.below(alts.len())].generate(rng))
}

// ---------------------------------------------------------------------------
// Primitive strategies.
// ---------------------------------------------------------------------------

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (*self.start() as i128 + v) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, _rng: &mut TestRng) -> bool {
        *self
    }
}

/// A `&str` literal is a regex strategy over strings (upstream behavior).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Collection strategies.
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strat, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies (upstream `SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> Strat<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let size = size.into();
        Strat::new(move |rng: &mut TestRng| {
            let n = size.min + rng.below(size.max - size.min);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

// ---------------------------------------------------------------------------
// Runner configuration.
// ---------------------------------------------------------------------------

/// Why a test case did not pass (upstream `TestCaseError`, minus
/// shrinking metadata).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig as Config;
    pub use super::ProptestConfig;
}

pub mod strategy {
    pub use super::{one_of, BoxedStrategy, Just, Strat, Strategy};
}

pub mod option {
    use super::{Strat, Strategy, TestRng};

    /// `Option<T>` strategy: `None` a quarter of the time (upstream
    /// defaults to a similar leaning toward `Some`).
    pub fn of<S>(element: S) -> Strat<Option<S::Value>>
    where
        S: Strategy + 'static,
    {
        Strat::new(move |rng: &mut TestRng| {
            if rng.unit_f64() < 0.25 {
                None
            } else {
                Some(element.generate(rng))
            }
        })
    }
}

/// What the prelude exports, mirroring `proptest::prelude::*` closely
/// enough for this workspace: the strategy machinery, the macros (which
/// `#[macro_export]` already puts at the crate root), and the crate
/// itself under the name `prop` so `prop::collection::vec` resolves.
pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strat, Strategy};
    pub use super::{ProptestConfig, TestCaseError};
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    }};
}

/// Reject the current case and move on to the next one. Upstream
/// regenerates a replacement case; the stand-in treats the case as
/// passed, which is fine at the case counts used here. Expands to an
/// early `return` from the closure `proptest!` wraps each case body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {:?} != {:?}", a, b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {:?} != {:?}: {}", a, b, format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!("prop_assert_ne failed: both {:?}", a);
        }
    }};
}

/// The test-harness macro. Each generated `#[test]` runs `config.cases`
/// deterministic cases; a failing case's panic message is prefixed with
/// the case index so it can be reproduced (seeding is by test name and
/// case index, with no global state).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __guard = $crate::CasePanicContext::new(stringify!($name), __case);
                    // The closure lets test bodies `return Ok(())` and
                    // lets `prop_assume!` bail out early, as upstream.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case failed: {e}");
                    }
                    ::std::mem::forget(__guard);
                }
            }
        )*
    };
}

/// Prints which deterministic case was running if the body panics
/// (dropped normally — and forgotten — on success).
pub struct CasePanicContext {
    name: &'static str,
    case: u32,
}

impl CasePanicContext {
    pub fn new(name: &'static str, case: u32) -> CasePanicContext {
        CasePanicContext { name, case }
    }
}

impl Drop for CasePanicContext {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at deterministic case {} of this run",
                self.name, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = super::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let p = Strategy::generate(&"[a-z]{1,5}(/[a-z]{1,5}){0,3}", &mut rng);
            assert!(p.split('/').count() <= 4 && !p.starts_with('/'), "{p:?}");
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = super::TestRng::from_seed(2);
        let strat = prop_oneof![Just(1u32), (2u32..5).prop_map(|v| v * 10),]
            .prop_filter("nonzero", |v| *v != 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (20..50).contains(&v), "{v}");
        }
        let vecs = prop::collection::vec(0usize..10, 1..4);
        for _ in 0..100 {
            let v = vecs.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        struct T(Vec<T>);
        fn depth(t: &T) -> usize {
            1 + t.0.iter().map(depth).max().unwrap_or(0)
        }
        let leaf = Just(T(vec![])).boxed();
        let tree = leaf.prop_recursive(3, 20, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(T)
        });
        let mut rng = super::TestRng::from_seed(3);
        for _ in 0..200 {
            assert!(depth(&tree.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_macro_runs(xs in prop::collection::vec(0u32..50, 0..6), flag in 0usize..2) {
            prop_assert!(xs.len() < 6);
            prop_assert_eq!(flag == 0 || flag == 1, true);
            for x in xs {
                prop_assert!(x < 50, "x was {}", x);
            }
        }
    }
}
