//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the benchmarking surface the workspace's benches use:
//! `Criterion::bench_function`, benchmark groups with `sample_size` /
//! `throughput`, `Bencher::iter` / `iter_batched`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — calibrate an iteration count to
//! a target measurement window, time it, report the per-iteration mean
//! (plus throughput when configured). No statistical analysis, HTML
//! reports, or baseline comparison; numbers print to stdout in a stable
//! one-line-per-benchmark format that the experiment docs can quote.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(200);
/// Upper bound on calibrated iterations (guards against ~ns routines).
const MAX_ITERS: u64 = 10_000_000;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Upstream parses CLI filters here; the stand-in benches always run.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        // The stand-in sizes samples by wall-clock time, not count.
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Handed to the benchmark closure; records one calibrated, timed run.
pub struct Bencher {
    /// Mean per-iteration time of the measured sample.
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate: grow the iteration count until the
        // sample window is met, then time the full batch.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= MAX_ITERS {
                self.mean = Some(elapsed / iters.max(1) as u32);
                return;
            }
            let grow = if elapsed.is_zero() {
                iters * 16
            } else {
                ((TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)) as u64 + 1) * iters
            };
            iters = grow.clamp(iters + 1, MAX_ITERS);
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup runs outside the timed region, once per iteration.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= MAX_ITERS {
                self.mean = Some(elapsed / iters.max(1) as u32);
                return;
            }
            let grow = if elapsed.is_zero() {
                iters * 16
            } else {
                ((TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)) as u64 + 1) * iters
            };
            iters = grow.clamp(iters + 1, MAX_ITERS);
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(id: &str, throughput: Option<Throughput>, f: F) {
    let mut b = Bencher { mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => {
            let mut line = format!("bench {id:<50} {:>12}/iter", format_duration(mean));
            if let Some(t) = throughput {
                let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
                match t {
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  {:>10.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                    }
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  {:>10.0} elem/s", per_sec(n)));
                    }
                }
            }
            println!("{line}");
        }
        None => println!("bench {id:<50} (no measurement: closure never called iter)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher { mean: None };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert!(b.mean.is_some());
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher { mean: None };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.mean.unwrap() > Duration::ZERO || b.mean.is_some());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
    }
}
