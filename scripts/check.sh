#!/usr/bin/env bash
# Tier-1 verification: everything that must stay green on every commit.
#
#   scripts/check.sh
#
# Build and tests are hard requirements. fmt/clippy run when the
# toolchain has them installed; offline or slim toolchains may lack the
# components, in which case they are reported and skipped rather than
# failing the run.
set -uo pipefail
cd "$(dirname "$0")/.."

failures=0

run_hard() {
  echo "==> $*"
  if ! "$@"; then
    echo "FAILED: $*" >&2
    failures=$((failures + 1))
  fi
}

run_soft() {
  local probe=$1
  shift
  if ! cargo "$probe" --version >/dev/null 2>&1; then
    echo "==> skipping cargo $probe (component not installed)"
    return
  fi
  echo "==> $*"
  if ! "$@"; then
    echo "FAILED: $*" >&2
    failures=$((failures + 1))
  fi
}

run_hard cargo build --release --offline
run_hard cargo test -q --offline
run_soft fmt cargo fmt --check
run_soft clippy cargo clippy --offline --all-targets -- -D warnings

if [ "$failures" -ne 0 ]; then
  echo "check.sh: $failures check(s) failed" >&2
  exit 1
fi
echo "check.sh: all checks passed"
