#!/usr/bin/env bash
# Tier-1 verification: everything that must stay green on every commit.
#
#   scripts/check.sh
#
# Build and tests are hard requirements. fmt/clippy are hard
# requirements too whenever the toolchain has them installed; only a
# slim toolchain that lacks the component skips them (reported).
set -uo pipefail
cd "$(dirname "$0")/.."

failures=0

run_hard() {
  echo "==> $*"
  if ! "$@"; then
    echo "FAILED: $*" >&2
    failures=$((failures + 1))
  fi
}

# Hard when the component is installed; skipped (with a note) only on
# toolchains that genuinely lack it.
run_if_installed() {
  local probe=$1
  shift
  if ! cargo "$probe" --version >/dev/null 2>&1; then
    echo "==> skipping cargo $probe (component not installed)"
    return
  fi
  run_hard "$@"
}

run_hard cargo build --release --offline
# The daemon crate by name, so a tier-1 run can't miss it even if the
# workspace member list regresses.
run_hard cargo build --release --offline -p xia-server
run_hard cargo test -q --offline
run_if_installed fmt cargo fmt --check
run_if_installed clippy cargo clippy --offline --all-targets -- -D warnings

if [ "$failures" -ne 0 ]; then
  echo "check.sh: $failures check(s) failed" >&2
  exit 1
fi
echo "check.sh: all checks passed"
