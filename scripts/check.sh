#!/usr/bin/env bash
# Tier-1 verification: everything that must stay green on every commit.
#
#   scripts/check.sh
#
# Build and tests are hard requirements. fmt/clippy are hard
# requirements too whenever the toolchain has them installed; only a
# slim toolchain that lacks the component skips them (reported).
set -uo pipefail
cd "$(dirname "$0")/.."

failures=0

run_hard() {
  echo "==> $*"
  if ! "$@"; then
    echo "FAILED: $*" >&2
    failures=$((failures + 1))
  fi
}

# Hard when the component is installed; skipped (with a note) only on
# toolchains that genuinely lack it.
run_if_installed() {
  local probe=$1
  shift
  if ! cargo "$probe" --version >/dev/null 2>&1; then
    echo "==> skipping cargo $probe (component not installed)"
    return
  fi
  run_hard "$@"
}

run_hard cargo build --release --offline
# The daemon crate by name, so a tier-1 run can't miss it even if the
# workspace member list regresses.
run_hard cargo build --release --offline -p xia-server
run_hard cargo test -q --offline
# The crash matrix by name: the durability invariant (recovery after any
# injected fault yields old or new state, never corruption) must never
# silently drop out of the suite.
run_hard cargo test -q --offline -p xia-storage --test crash_matrix
# The differential oracle: a pinned-seed sweep over the invariants
# (plan equivalence, containment, parity, durability, estimate sanity,
# exec-parity between the batched and navigational executors, sampled
# recommend-determinism and advise-quality), plus replay of every
# regression case the oracle ever found. The budget is sized to keep
# the whole sweep well under half a minute in release.
run_hard ./target/release/xia-cli fuzz --seed 42 --budget 500
run_hard cargo test -q --offline -p xia-oracle --test corpus_replay
# The interleaved-writes oracle: seeded concurrent writers through the
# server's committer, checked for linearizability (commit-order replay),
# prefix-consistent snapshots, and durability parity.
run_hard ./target/release/xia-cli fuzz --interleaved --seed 42 --budget 20
# The network-chaos oracle: a pinned-seed sweep driving a real daemon
# through fault-injecting transports (garbage bytes, slowloris,
# mid-frame disconnects, tiny chunks) under squeezed admission limits.
# Invariant: every connection ends in a well-formed response, a clean
# BUSY, or a closed socket — never a wedged worker or a crossed
# stream — and accepted == rejected + served + faulted reconciles.
run_hard ./target/release/xia-cli fuzz --net-chaos --seed 42 --budget 300
# The contention smoke test by name: readers must stay prefix-consistent
# while a writer streams group commits (the snapshot-isolation contract).
run_hard cargo test -q --offline -p xia-server --test snapshot_isolation
# The overload-protection contracts by name: admission BUSY + close on
# over-limit connections, tiered brownout shedding, the frame-size cap
# (unbounded read_line regression), garbage-frame robustness, and the
# surfaced worker-spawn failure.
run_hard cargo test -q --offline -p xia-server --test overload
# The scalable-advisor contracts by name: compression is lossless on
# duplicate workloads (property test), and ADVISE under a live
# insert/query storm honors its wall budget without stalling the
# committer. The fuzz sweep above also samples the advise-quality
# invariant (compressed+anytime within the certified bound of the
# exhaustive optimum).
run_hard cargo test -q --offline -p xia-advisor --test prop_compress
run_hard cargo test -q --offline -p xia-server --test advise_under_load
# The executor-parity property test by name: the batched engine must
# match navigational evaluation node-for-node (rows and ExecStats) over
# random documents, queries, and index configurations.
run_hard cargo test -q --offline -p xia-optimizer --test prop_exec_batch
# The tenant-isolation suite by name: cross-tenant QUERY/INSERT/ADVISE
# scoping, independent per-tenant restart fingerprints, the FaultVfs
# crash matrix over one tenant's subdirectory, per-tenant shed hints
# with exact accounting partition, and snapshot-cache aging.
run_hard cargo test -q --offline -p xia-server --test tenants
# The multi-tenant oracle: seeded clients race tenant-scoped writes and
# foreign-marker probes against a live daemon under a squeezed
# per-tenant in-flight cap, then reconcile per-tenant counts exactly —
# live and again after restart from each tenant's durable directory.
run_hard ./target/release/xia-cli fuzz --tenants --seed 42 --budget 4

# Persistence code must do ALL file I/O through the injectable Vfs —
# a direct std::fs call is a fault-injection blind spot the crash
# matrix can't reach.
check_vfs_only() {
  echo "==> grep: persist paths use Vfs only"
  local bad=0 f
  for f in crates/storage/src/persist.rs \
           crates/storage/src/durable.rs \
           crates/workload/src/persist.rs; do
    if grep -nE 'std::fs::|fs::write|fs::read|File::create|File::open' "$f"; then
      echo "FAILED: $f bypasses the Vfs layer (see matches above)" >&2
      bad=1
    fi
  done
  if [ "$bad" -ne 0 ]; then
    failures=$((failures + 1))
  fi
}
check_vfs_only

# The read path is lock-free by construction: reads run against an
# immutable Arc<Snapshot> and writes go through the committer. A
# RwLock<Database> reappearing in the server would silently reintroduce
# reader/writer blocking (and poisoning) that the snapshot design removed.
check_lock_free_reads() {
  echo "==> grep: no RwLock<Database> in crates/server/src"
  if grep -rnE 'RwLock<\s*Database\s*>' crates/server/src; then
    echo "FAILED: crates/server/src reintroduces RwLock<Database> (see matches above)" >&2
    failures=$((failures + 1))
  fi
}
check_lock_free_reads

# Server-side socket I/O must go through the injectable Transport —
# a raw BufReader/read_line/try_clone on the daemon side is a blind
# spot the net-chaos oracle can't fault-inject. The client keeps its
# plain sockets (it is the remote end under test), and transport.rs is
# where the raw calls are supposed to live.
check_transport_only() {
  echo "==> grep: server socket I/O goes through Transport only"
  if grep -rnE 'BufReader|BufWriter|read_line|try_clone' crates/server/src \
      | grep -vE '^crates/server/src/(client|transport)\.rs'; then
    echo "FAILED: crates/server/src bypasses the Transport layer (see matches above)" >&2
    failures=$((failures + 1))
  fi
}
check_transport_only

# Tenant isolation is structural: every durable root is owned by a
# TenantState, and tenant.rs is the only place the server may build a
# DurableStore. A stray construction elsewhere could silently share a
# disk directory between namespaces.
check_tenant_owned_stores() {
  echo "==> grep: DurableStore constructed only in tenant.rs"
  if grep -rnE 'DurableStore::(create|open)' crates/server/src \
      | grep -v '^crates/server/src/tenant\.rs'; then
    echo "FAILED: crates/server/src builds a DurableStore outside tenant.rs (see matches above)" >&2
    failures=$((failures + 1))
  fi
}
check_tenant_owned_stores

run_if_installed fmt cargo fmt --check
run_if_installed clippy cargo clippy --offline --all-targets -- -D warnings

if [ "$failures" -ne 0 ]; then
  echo "check.sh: $failures check(s) failed" >&2
  exit 1
fi
echo "check.sh: all checks passed"
