//! Operational workflow: build a tuned database, snapshot it to disk,
//! reload it elsewhere, and verify the recommendation still holds —
//! statistics, indexes and plans all survive the round trip.
//!
//! ```text
//! cargo run -p xia --example snapshot_workflow --release
//! ```

use xia::advisor::analysis::measure_execution;
use xia::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("xia_snapshot_example");
    let _ = std::fs::remove_dir_all(&dir);

    // --- Day 1: load data, advise, create indexes, snapshot. -------------
    let mut db = Database::new();
    db.create_collection("auctions");
    let coll = db.collection_mut("auctions").unwrap();
    XMarkGen::new(XMarkConfig {
        docs: 150,
        ..Default::default()
    })
    .populate(coll);

    let workload = Workload::parse(
        "# regional training workload\n\
         /site/regions/africa/item/quantity\n\
         /site/regions/namerica/item/quantity\n\
         3; //closed_auction[price >= 700]/date\n",
        "auctions",
        None,
    )
    .expect("workload file parses");

    let advisor = Advisor::default();
    let rec = advisor.recommend(coll, &workload, 512 << 10, SearchStrategy::GreedyHeuristic);
    println!("day 1 recommendation:\n{}", rec.render());
    Advisor::create_indexes(&rec, coll);
    let day1 = measure_execution(coll, &workload);

    save_database(&db, &dir).expect("snapshot saves");
    println!("snapshot written to {}\n", dir.display());

    // --- Day 2: fresh process, reload, same behaviour. --------------------
    let restored = load_database(&dir).expect("snapshot loads");
    let coll2 = restored
        .collection("auctions")
        .expect("collection restored");
    println!(
        "restored: {} documents, {} indexes, {} distinct paths",
        coll2.len(),
        coll2.indexes().len(),
        coll2.stats().path_count()
    );
    for ix in coll2.indexes() {
        println!("  {}", ix.definition().ddl("auctions"));
    }
    let day2 = measure_execution(coll2, &workload);
    println!(
        "\nworkload execution: day1 {:.2} ms / {} docs -> day2 {:.2} ms / {} docs (same plans)",
        day1.seconds * 1e3,
        day1.docs_evaluated,
        day2.seconds * 1e3,
        day2.docs_evaluated
    );
    assert_eq!(
        day1.results, day2.results,
        "identical answers after restore"
    );

    // Plans still use the restored physical indexes.
    let q = compile("//closed_auction[price >= 700]/date", "auctions").unwrap();
    let ex = explain(coll2, &CostModel::default(), &q);
    println!("\nrestored plan:\n{}", ex.text);
    std::fs::remove_dir_all(&dir).ok();
}
