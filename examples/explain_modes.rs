//! The two new EXPLAIN modes, demonstrated exactly as in the paper's
//! first demo scenario (Figures 2 and 3):
//!
//! 1. given a query, invoke the optimizer in *Enumerate Indexes* mode to
//!    get the basic candidate set;
//! 2. given a query and a configuration of XML index patterns, invoke
//!    *Evaluate Indexes* mode to estimate the query's cost under it.
//!
//! ```text
//! cargo run -p xia --example explain_modes --release
//! ```

use xia::prelude::*;

fn main() {
    let mut coll = Collection::new("auctions");
    XMarkGen::new(XMarkConfig {
        docs: 150,
        ..Default::default()
    })
    .populate(&mut coll);
    let model = CostModel::default();

    // One query in each supported surface language.
    let queries = [
        "/site/regions/namerica/item[price > 460]/name",
        r#"for $p in collection("auctions")//person where $p/profile/age > 60 return $p/name"#,
        r#"SELECT XMLQUERY('$d//closed_auction/date') FROM auctions WHERE XMLEXISTS('$d//closed_auction[price >= 700]')"#,
    ];

    println!("==================== Enumerate Indexes mode ====================");
    for text in &queries {
        let q = compile(text, "auctions").expect("query compiles");
        println!("\n[{}] {}", q.language, text);
        for cand in enumerate_indexes(&q) {
            println!("   -> {cand}");
        }
    }

    println!("\n==================== Evaluate Indexes mode =====================");
    let q = compile(queries[0], "auctions").unwrap();
    let configs: Vec<(&str, Vec<IndexDefinition>)> = vec![
        ("no indexes", vec![]),
        (
            "exact pattern",
            vec![IndexDefinition::virtual_index(
                IndexId(1),
                LinearPath::parse("/site/regions/namerica/item/price").unwrap(),
                DataType::Double,
            )],
        ),
        (
            "generalized pattern",
            vec![IndexDefinition::virtual_index(
                IndexId(2),
                LinearPath::parse("/site/regions/*/item/price").unwrap(),
                DataType::Double,
            )],
        ),
        (
            "overly general //*",
            vec![IndexDefinition::virtual_index(
                IndexId(3),
                LinearPath::parse("//price").unwrap(),
                DataType::Double,
            )],
        ),
    ];
    println!("query: {}\n", q.text);
    for (label, config) in &configs {
        let eval = evaluate_indexes(&coll, &model, config, std::slice::from_ref(&q));
        let pq = &eval.per_query[0];
        println!(
            "{label:<24} estimated cost {:>10.1}   uses {:?}",
            pq.cost.total(),
            pq.used_indexes
        );
        print!("{}", indent(&pq.plan.render(&q.text)));
    }

    println!("\n==================== Normal explain (real catalog) =============");
    let q2 = compile(queries[0], "auctions").unwrap();
    let before = explain(&coll, &model, &q2);
    println!("before creating indexes:\n{}", indent(&before.text));
    coll.create_index(IndexDefinition::new(
        IndexId(10),
        LinearPath::parse("/site/regions/*/item/price").unwrap(),
        DataType::Double,
    ));
    let after = explain(&coll, &model, &q2);
    println!(
        "after creating the generalized index:\n{}",
        indent(&after.text)
    );
    let (rows, stats) = execute(&coll, &q2, &after.plan).expect("physical plan runs");
    println!(
        "executed: {} results, {} docs evaluated, {} index entries scanned",
        rows.len(),
        stats.docs_evaluated,
        stats.entries_scanned
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
