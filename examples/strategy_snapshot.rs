//! Prints the exact `SearchOutcome` (chosen set, costs, per-query costs,
//! used indexes) for every search strategy on the integration-test and
//! bench workloads. Used to confirm the what-if engine rewrite is
//! behavior-preserving; kept as an example so future evaluator changes
//! can re-run the same comparison.

use xia::prelude::*;

fn xmark(docs: usize) -> Collection {
    let mut c = Collection::new("auctions");
    XMarkGen::new(XMarkConfig {
        docs,
        ..Default::default()
    })
    .populate(&mut c);
    c
}

fn print_outcomes(tag: &str, c: &Collection, w: &Workload, budget: u64) {
    let advisor = Advisor::default();
    for strat in [
        SearchStrategy::GreedyBaseline,
        SearchStrategy::GreedyHeuristic,
        SearchStrategy::GreedyAblated(GreedyKnobs {
            coverage_bitmap: false,
            eviction: true,
            drop_unused: false,
        }),
        SearchStrategy::TopDown,
    ] {
        let rec = advisor.recommend(c, w, budget, strat);
        let o = &rec.outcome;
        println!(
            "{tag} {strat}: chosen={:?} base={:.6} cost={:.6} size={} per_query={:?} used={:?}",
            o.chosen,
            o.base_cost,
            o.workload_cost,
            o.size_bytes,
            o.per_query_cost,
            o.used_per_query
        );
    }
}

fn main() {
    let c = xmark(150);
    let w = Workload::from_queries(
        &[
            "/site/regions/africa/item/quantity",
            "/site/regions/namerica/item/quantity",
            "/site/regions/samerica/item/price",
            "/site/regions/europe/item[price > 450]/name",
            "//closed_auction[price >= 700]/date",
        ],
        "auctions",
    )
    .unwrap();
    print_outcomes("regional/1MiB", &c, &w, 1 << 20);
    print_outcomes("regional/32KiB", &c, &w, 32 << 10);

    // Update-heavy variant exercises maintenance costing.
    let mut wu = Workload::from_queries(
        &[
            "/site/regions/africa/item/quantity",
            "//person[profile/age > 70]/name",
        ],
        "auctions",
    )
    .unwrap();
    let sample = c.get(xia::storage::DocId(0)).unwrap().clone();
    wu.add_insert(sample, 50.0);
    print_outcomes("updates/1MiB", &c, &wu, 1 << 20);

    // The bench harness's standard nine-query workload, OR groups included.
    let c2 = {
        let mut c2 = Collection::new("auctions");
        XMarkGen::new(XMarkConfig {
            docs: 100,
            ..Default::default()
        })
        .populate(&mut c2);
        c2
    };
    let texts = [
        "/site/regions/africa/item/quantity".to_string(),
        "/site/regions/namerica/item/quantity".to_string(),
        "/site/regions/samerica/item/price".to_string(),
        "/site/regions/europe/item[price > 450]/name".to_string(),
        "//person[profile/age > 70]/name".to_string(),
        "//closed_auction[price >= 700]/date".to_string(),
        r#"//item[@featured = "yes"]/name"#.to_string(),
        r#"//item[price < 40 or price > 480]/name"#.to_string(),
        r#"for $a in collection("auctions")//open_auction where $a/initial >= 90 return $a/current"#
            .to_string(),
    ];
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let w2 = Workload::from_queries(&refs, "auctions").unwrap();
    print_outcomes("standard/1MiB", &c2, &w2, 1 << 20);
}
