//! Auction-site scenario (XMark-like): train the advisor on one set of
//! regional queries, then show how generalized indexes pay off on a
//! "future" workload the advisor never saw — the motivating scenario for
//! the paper's top-down search.
//!
//! ```text
//! cargo run -p xia --example auction_site --release
//! ```

use xia::advisor::analysis::measure_execution;
use xia::prelude::*;

fn main() {
    let mut coll = Collection::new("auctions");
    XMarkGen::new(XMarkConfig {
        docs: 200,
        items_per_region: 8,
        people: 10,
        open_auctions: 6,
        closed_auctions: 5,
        ..Default::default()
    })
    .populate(&mut coll);

    // DBA's representative training workload: two regions only.
    let training = [
        "/site/regions/africa/item[price > 460]/name".to_string(),
        "/site/regions/asia/item[price > 460]/name".to_string(),
        "/site/regions/africa/item/quantity".to_string(),
        "/site/regions/asia/item/quantity".to_string(),
    ];
    // The production workload drifts: same shapes, other regions/values.
    let unseen = synthetic_variations(
        training.as_ref(),
        &SynthConfig {
            per_template: 3,
            seed: 17,
        },
    );
    println!("training queries: {}", training.len());
    println!("unseen variations: {}\n", unseen.len());

    let train_refs: Vec<&str> = training.iter().map(String::as_str).collect();
    let workload = Workload::from_queries(&train_refs, "auctions").unwrap();
    let advisor = Advisor::default();

    for strategy in [SearchStrategy::GreedyHeuristic, SearchStrategy::TopDown] {
        let rec = advisor.recommend(&coll, &workload, 1 << 20, strategy);
        println!("=== {strategy} ===");
        println!("{}", rec.render());

        // How do the recommended indexes do on the unseen workload?
        let unseen_compiled: Vec<NormalizedQuery> = unseen
            .iter()
            .map(|q| compile(q, "auctions").unwrap())
            .collect();
        let report = analyze(&advisor, &coll, &workload, &rec, &unseen_compiled);
        let unseen_no: f64 = report.unseen_rows.iter().map(|r| r.no_index).sum();
        let unseen_rec: f64 = report.unseen_rows.iter().map(|r| r.recommended).sum();
        println!(
            "unseen workload estimated cost: {:.1} -> {:.1} ({:.1}% retained benefit)\n",
            unseen_no,
            unseen_rec,
            if unseen_no > 0.0 {
                100.0 * (unseen_no - unseen_rec) / unseen_no
            } else {
                0.0
            }
        );
    }

    // Build the top-down recommendation and run the unseen queries for real.
    let rec = advisor.recommend(&coll, &workload, 1 << 20, SearchStrategy::TopDown);
    let mut unseen_workload = Workload::new();
    for q in &unseen {
        unseen_workload.add_query(q, "auctions", 1.0).unwrap();
    }
    let before = measure_execution(&coll, &unseen_workload);
    Advisor::create_indexes(&rec, &mut coll);
    let after = measure_execution(&coll, &unseen_workload);
    println!(
        "actual unseen-workload execution: {:.1} ms ({} docs) -> {:.1} ms ({} docs)",
        before.seconds * 1e3,
        before.docs_evaluated,
        after.seconds * 1e3,
        after.docs_evaluated
    );
}
