//! Financial scenario (TPoX-like): three differently-shaped collections
//! (FIXML orders, customer accounts, securities), advised independently —
//! including attribute-pattern indexes on the FIXML documents and
//! update-cost-aware recommendation for the high-churn order collection.
//!
//! ```text
//! cargo run -p xia --example financial_tpox --release
//! ```

use xia::prelude::*;

fn main() {
    let mut db = Database::new();
    TpoxGen::new(TpoxConfig {
        orders: 400,
        customers: 80,
        securities: 60,
        seed: 7,
    })
    .populate_all(&mut db);

    let advisor = Advisor::default();
    let queries = tpox_queries();

    for coll_name in ["order", "custacc", "security"] {
        let texts: Vec<&str> = queries
            .iter()
            .filter(|(c, _)| *c == coll_name)
            .map(|(_, q)| q.as_str())
            .collect();
        let workload = Workload::from_queries(&texts, coll_name).expect("queries compile");
        let coll = db.collection(coll_name).expect("populated");
        let rec = advisor.recommend(coll, &workload, 1 << 20, SearchStrategy::GreedyHeuristic);
        println!("=== collection '{coll_name}' ({} docs) ===", coll.len());
        println!("{}", rec.render());
        for ddl in rec.ddl(coll_name) {
            println!("  {ddl};");
        }
        println!();
    }

    // Orders churn: same queries, but with a heavy insert rate. The
    // advisor charges index maintenance and recommends less.
    let order_texts: Vec<&str> = queries
        .iter()
        .filter(|(c, _)| *c == "order")
        .map(|(_, q)| q.as_str())
        .collect();
    let coll = db.collection("order").unwrap();
    let mut churny = Workload::from_queries(&order_texts, "order").unwrap();
    let sample = coll.get(DocId(0)).expect("orders exist").clone();
    churny.add_insert(sample, 50_000.0);
    // Database-level advice: one budget shared across the three
    // collections; space flows to whichever collection's next index buys
    // the most benefit per byte.
    let wo = Workload::from_queries(
        &queries
            .iter()
            .filter(|(c, _)| *c == "order")
            .map(|(_, q)| q.as_str())
            .collect::<Vec<_>>(),
        "order",
    )
    .unwrap();
    let wc = Workload::from_queries(
        &queries
            .iter()
            .filter(|(c, _)| *c == "custacc")
            .map(|(_, q)| q.as_str())
            .collect::<Vec<_>>(),
        "custacc",
    )
    .unwrap();
    let ws = Workload::from_queries(
        &queries
            .iter()
            .filter(|(c, _)| *c == "security")
            .map(|(_, q)| q.as_str())
            .collect::<Vec<_>>(),
        "security",
    )
    .unwrap();
    let db_rec = advisor.recommend_database(
        &db,
        &[("order", &wo), ("custacc", &wc), ("security", &ws)],
        96 << 10,
    );
    println!("=== shared-budget database advice (96 KiB total) ===");
    println!("{}", db_rec.render());

    let rec_ro = advisor.recommend(
        coll,
        &Workload::from_queries(&order_texts, "order").unwrap(),
        1 << 20,
        SearchStrategy::GreedyHeuristic,
    );
    let rec_uh = advisor.recommend(coll, &churny, 1 << 20, SearchStrategy::GreedyHeuristic);
    println!("=== update-aware recommendation (order collection) ===");
    println!(
        "read-only workload: {} indexes ({} KiB)",
        rec_ro.indexes.len(),
        rec_ro.outcome.size_bytes / 1024
    );
    println!(
        "with 50k inserts:   {} indexes ({} KiB)",
        rec_uh.indexes.len(),
        rec_uh.outcome.size_bytes / 1024
    );
}
