//! The online advising loop, end to end: start the daemon in-process,
//! drive a query mix over TCP, watch the monitor capture it, run an
//! advisor cycle, auto-heal the index drift, and confirm the next
//! cycle reports a clean configuration.
//!
//! ```text
//! cargo run -p xia --example online_advisor --release
//! ```

use std::sync::Arc;
use xia::prelude::*;
use xia::server::Value;

fn main() {
    // A frozen clock keeps the monitor's decayed weights exact, so two
    // identical sessions produce identical recommendations.
    let clock = Arc::new(FakeClock::new());

    let mut coll = Collection::new("auctions");
    XMarkGen::new(XMarkConfig {
        docs: 120,
        ..Default::default()
    })
    .populate(&mut coll);
    let mut db = Database::new();
    db.add_collection(coll);

    let server = Server::start(
        db,
        ServerConfig {
            budget_bytes: 256 << 10,
            auto_apply: true,
            clock,
            ..Default::default()
        },
    )
    .expect("daemon starts");
    println!("daemon on {}", server.addr());

    // --- A morning of traffic. -------------------------------------------
    let mut client = Client::connect(server.addr()).expect("connect");
    let mix = [
        "/site/regions/africa/item/quantity",
        "/site/regions/namerica/item/quantity",
        "//person[profile/age > 70]/name",
        "//closed_auction[price >= 700]/date",
        r#"for $a in collection("auctions")//open_auction where $a/initial >= 90 return $a/current"#,
    ];
    for _ in 0..4 {
        for q in mix {
            let resp = client.query(q, None).expect("query");
            assert_eq!(resp.get_bool("ok"), Some(true), "{resp}");
        }
    }
    let resp = client.command("workload").expect("workload");
    println!(
        "monitor captured {} distinct statements from {} executions",
        resp.get_f64("statements").unwrap_or(0.0),
        mix.len() * 4
    );

    // --- The advisor cycle notices the drift and heals it. ---------------
    let resp = client.command("advise").expect("advise");
    print!("{}", resp.get_str("text").unwrap_or(""));

    let resp = client.command("advise").expect("second advise");
    let report = resp.get("report").expect("report");
    let colls = report
        .get("collections")
        .and_then(Value::as_arr)
        .expect("collections");
    let missing = colls[0]
        .get("missing")
        .and_then(Value::as_arr)
        .map(<[Value]>::len)
        .unwrap_or(0);
    println!("second cycle: {missing} missing indexes (drift healed)");

    // --- Queries now run on the auto-applied configuration. --------------
    let resp = client
        .query("//closed_auction[price >= 700]/date", None)
        .expect("query");
    println!(
        "plan after auto-apply: {} ({} docs evaluated)",
        resp.get_str("plan").unwrap_or("?"),
        resp.get_f64("docs_evaluated").unwrap_or(0.0)
    );

    let resp = client.command("stats").expect("stats");
    let metrics = resp.get("metrics").expect("metrics");
    println!(
        "served {} requests, {} errors",
        metrics.get_f64("requests").unwrap_or(0.0),
        metrics.get_f64("errors").unwrap_or(0.0)
    );

    drop(client);
    server.stop();
}
