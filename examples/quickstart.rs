//! Quickstart: the full Figure-1 pipeline on a small XMark-like database.
//!
//! ```text
//! cargo run -p xia --example quickstart --release
//! ```

use xia::prelude::*;

fn main() {
    // --- 1. Build an XML database (the substrate DB2 provides in the paper).
    let mut coll = Collection::new("auctions");
    let gen = XMarkGen::new(XMarkConfig {
        docs: 200,
        ..Default::default()
    });
    gen.populate(&mut coll);
    println!(
        "loaded {} documents, {} nodes, {} distinct paths, {} data pages\n",
        coll.len(),
        coll.stats().total_nodes,
        coll.stats().path_count(),
        coll.stats().data_pages()
    );

    // --- 2. The training workload: regional queries + value predicates.
    let queries = [
        "/site/regions/africa/item/quantity",
        "/site/regions/namerica/item/quantity",
        "/site/regions/samerica/item/price",
        "//person[profile/age > 60]/name",
        "//closed_auction[price >= 700]/date",
    ];
    let workload = Workload::from_queries(&queries, "auctions").expect("queries compile");

    // --- 3. Basic candidates via the Enumerate Indexes optimizer mode.
    println!("== basic candidates (Enumerate Indexes mode) ==");
    for (q, _) in workload.queries() {
        println!("query: {}", q.text);
        for cand in enumerate_indexes(q) {
            println!("  candidate: {cand}");
        }
    }

    // --- 4. Recommend within a 512 KiB budget.
    let advisor = Advisor::default();
    let rec = advisor.recommend(&coll, &workload, 512 << 10, SearchStrategy::GreedyHeuristic);
    println!("\n== recommendation ==\n{}", rec.render());
    println!("== generalization DAG ==\n{}", rec.dag.render_text());
    println!("== search trace ==");
    for line in &rec.outcome.trace {
        println!("  {line}");
    }

    // --- 5. Create the indexes and compare actual execution.
    let before = xia::advisor::analysis::measure_execution(&coll, &workload);
    Advisor::create_indexes(&rec, &mut coll);
    let after = xia::advisor::analysis::measure_execution(&coll, &workload);
    println!("\n== actual execution ==");
    println!(
        "without indexes: {:.1} ms, {} docs evaluated, {} pages read, {} results",
        before.seconds * 1e3,
        before.docs_evaluated,
        before.pages_read,
        before.results
    );
    println!(
        "with recommended indexes: {:.1} ms, {} docs evaluated, {} pages read, {} results",
        after.seconds * 1e3,
        after.docs_evaluated,
        after.pages_read,
        after.results
    );
    println!("\nDDL to reproduce:");
    for ddl in rec.ddl("auctions") {
        println!("  {ddl};");
    }
}
