//! The parent axis (`..`) and other non-linearizable constructs: queries
//! stay navigationally executable and plans stay correct, but such paths
//! are recognized as unindexable — the paper's observation that "indexes
//! cannot be used for some [patterns] because of certain language
//! features".

use xia::prelude::*;

fn collection(n: usize) -> Collection {
    let mut c = Collection::new("shop");
    for i in 0..n {
        let mut b = DocumentBuilder::new();
        b.open("shop");
        b.open("item");
        b.leaf("price", &format!("{}", i % 25));
        b.leaf("name", &format!("n{}", i % 4));
        b.close();
        if i % 3 == 0 {
            b.open("promo");
            b.leaf("price", "0");
            b.close();
        }
        b.close();
        c.insert(b.finish().unwrap());
    }
    c
}

fn ground_truth(c: &Collection, q: &NormalizedQuery) -> Vec<(DocId, u32)> {
    let mut out = Vec::new();
    for (id, doc) in c.documents() {
        for n in q.run_on_document(doc) {
            out.push((id, n.as_u32()));
        }
    }
    out
}

#[test]
fn parent_axis_parses_and_displays() {
    for q in ["/shop/item/price/..", "//price/..", "/shop/item/../promo"] {
        let parsed = xia::xpath::parse(q).unwrap();
        let again = xia::xpath::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, again, "round trip for {q}");
    }
    assert!(xia::xpath::parse("//..").is_err());
}

#[test]
fn parent_axis_navigational_semantics() {
    let d =
        Document::parse("<shop><item><price>5</price></item><item><name>x</name></item></shop>")
            .unwrap();
    let eval = |q: &str| xia::xpath::evaluate(&d, &xia::xpath::parse(q).unwrap());
    // Parents of price elements = items that have a price.
    let items_with_price = eval("/shop/item/price/..");
    assert_eq!(items_with_price.len(), 1);
    assert_eq!(d.name(items_with_price[0]), "item");
    // Equivalent existence query selects the same nodes.
    assert_eq!(items_with_price, eval("/shop/item[price]"));
    // Root's parent is empty.
    assert!(eval("/shop/..").is_empty());
    // `../` navigates sideways.
    let prices = eval("/shop/item/name/../price");
    assert!(prices.is_empty(), "the name-bearing item has no price");
}

#[test]
fn parent_queries_are_unindexable_but_correct() {
    let mut c = collection(120);
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    c.create_index(IndexDefinition::new(
        IndexId(2),
        LinearPath::parse("//*").unwrap(),
        DataType::Varchar,
    ));
    let model = CostModel::default();
    // `//price/..` cannot be linearized (the pop target is a descendant
    // step), so it compiles opaque: no candidates, doc-scan plan, right
    // answer.
    let q = compile("//price/..", "shop").unwrap();
    assert!(q.atoms.is_empty(), "opaque queries expose no atoms");
    assert!(
        enumerate_indexes(&q).is_empty(),
        "and therefore no candidates"
    );
    let ex = explain(&c, &model, &q);
    assert!(!ex.plan.uses_indexes(), "{}", ex.text);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q));
}

#[test]
fn foldable_parent_still_lowers_with_inexact_extraction() {
    // `/shop/item/price/..` folds to trunk `/shop/item`, which
    // over-approximates (items without price would wrongly qualify for an
    // index-only answer), so the extraction is marked inexact.
    let q = compile("/shop/item/price/..", "shop").unwrap();
    let ext = q.extraction().expect("extraction exists");
    assert_eq!(ext.path.to_string(), "/shop/item");
    assert!(!ext.exact);

    let c = collection(120);
    let model = CostModel::default();
    let ex = explain(&c, &model, &q);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q), "plan:\n{}", ex.text);
}

#[test]
fn text_extraction_never_uses_index_only() {
    // Regression: `/shop/item/name/text()` must return text nodes, not the
    // name elements an index-only plan would produce.
    let mut c = collection(200);
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/name").unwrap(),
        DataType::Varchar,
    ));
    let q = compile("/shop/item/name/text()", "shop").unwrap();
    assert!(!q.extraction().unwrap().exact);
    let ex = explain(&c, &CostModel::default(), &q);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q), "plan:\n{}", ex.text);
    // And the results really are text nodes.
    let (doc_id, node) = ground_truth(&c, &q)[0];
    let doc = c.get(doc_id).unwrap();
    assert_eq!(
        doc.kind(xia::xml::NodeId::from_u32(node)),
        xia::xml::NodeKind::Text
    );
}

#[test]
fn exact_extraction_does_use_index_only() {
    let mut c = collection(200);
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/name").unwrap(),
        DataType::Varchar,
    ));
    let q = compile("/shop/item/name", "shop").unwrap();
    assert!(q.extraction().unwrap().exact);
    let ex = explain(&c, &CostModel::default(), &q);
    assert!(ex.text.contains("XISCAN-ONLY"), "{}", ex.text);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q));
}
