//! Index-ORing: disjunctive predicates covered by unioning per-branch
//! index probes (DB2's IXOR), with verification that results always match
//! ground truth and that the advisor's coverage extends to OR workloads.

use xia::prelude::*;

fn collection(n: usize) -> Collection {
    let mut c = Collection::new("shop");
    for i in 0..n {
        let mut b = DocumentBuilder::new();
        b.open("shop");
        b.open("item");
        b.leaf("price", &format!("{}", i % 100));
        b.leaf("stock", &format!("{}", i % 37));
        b.leaf("name", &format!("n{}", i % 11));
        b.close();
        b.close();
        c.insert(b.finish().unwrap());
    }
    c
}

fn ground_truth(c: &Collection, q: &NormalizedQuery) -> Vec<(DocId, u32)> {
    let mut out = Vec::new();
    for (id, doc) in c.documents() {
        for n in q.run_on_document(doc) {
            out.push((id, n.as_u32()));
        }
    }
    out
}

#[test]
fn or_predicate_uses_ixor_when_both_branches_indexed() {
    let mut c = collection(500);
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    c.create_index(IndexDefinition::new(
        IndexId(2),
        LinearPath::parse("//item/stock").unwrap(),
        DataType::Double,
    ));
    let q = compile("//item[price = 3 or stock = 5]/name", "shop").unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    assert!(
        ex.text.contains("IXOR"),
        "expected an index-ORing plan, got:\n{}",
        ex.text
    );
    let (got, stats) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q));
    assert!(
        stats.docs_evaluated < 50,
        "union of two selective probes should stay small: {}",
        stats.docs_evaluated
    );
}

#[test]
fn or_with_one_unindexed_branch_falls_back_to_scan() {
    let mut c = collection(300);
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    // stock has no index: the union cannot be covered, so no IXOR.
    let q = compile("//item[price = 3 or stock = 5]/name", "shop").unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    assert!(
        !ex.text.contains("IXOR"),
        "uncovered OR must not claim IXOR:\n{}",
        ex.text
    );
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q));
}

#[test]
fn or_of_conjunctions_is_covered_by_representatives() {
    let mut c = collection(500);
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    c.create_index(IndexDefinition::new(
        IndexId(2),
        LinearPath::parse("//item/name").unwrap(),
        DataType::Varchar,
    ));
    // (price = 3 and stock > 1) or name = "n4": branch reps price / name.
    let q = compile(r#"//item[price = 3 and stock > 1 or name = "n4"]"#, "shop").unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q), "plan:\n{}", ex.text);
}

#[test]
fn or_with_non_conjunctive_branch_is_never_ixor() {
    // Regression: `price = 3 or not(stock)` must not union only the
    // indexable branch — the not() branch's documents would be dropped.
    let mut c = Collection::new("shop");
    for i in 0..200 {
        let mut b = DocumentBuilder::new();
        b.open("shop");
        b.open("item");
        b.leaf("price", &format!("{}", i % 50));
        if i % 3 != 0 {
            b.leaf("stock", "1");
        }
        b.close();
        b.close();
        c.insert(b.finish().unwrap());
    }
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    let q = compile("//item[price = 3 or not(stock)]", "shop").unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    assert!(!ex.text.contains("IXOR"), "unsound IXOR plan:\n{}", ex.text);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q));
}

#[test]
fn or_branch_with_unindexable_path_is_never_ixor() {
    // Regression (severity-8 review finding): `price = 3 or ../promo = 1`
    // has two syntactically conjunctive branches, but the parent-axis
    // branch lowers to zero atoms. An IXOR plan over the visible branch
    // would silently drop documents matching only `../promo = 1`.
    let mut c = Collection::new("shop");
    for i in 0..200 {
        let mut b = DocumentBuilder::new();
        b.open("shop");
        if i % 4 == 0 {
            b.leaf("promo", "1");
        }
        b.open("item");
        b.leaf("price", &format!("{}", i % 50));
        b.close();
        b.close();
        c.insert(b.finish().unwrap());
    }
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    let q = compile("//item[price = 3 or ../promo = 1]", "shop").unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    assert!(!ex.text.contains("IXOR"), "unsound IXOR plan:\n{}", ex.text);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q));
}

#[test]
fn nested_or_inside_not_is_never_ixor() {
    let mut c = collection(200);
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    let q = compile("//item[not(price = 3 or price = 5)]/name", "shop").unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    assert!(!ex.text.contains("IXOR"), "{}", ex.text);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, ground_truth(&c, &q));
}

#[test]
fn evaluate_indexes_rewards_or_coverage() {
    let c = collection(500);
    let model = CostModel::default();
    let q = compile("//item[price = 3 or stock = 5]/name", "shop").unwrap();
    let one = vec![IndexDefinition::virtual_index(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    )];
    let both = vec![
        IndexDefinition::virtual_index(
            IndexId(1),
            LinearPath::parse("//item/price").unwrap(),
            DataType::Double,
        ),
        IndexDefinition::virtual_index(
            IndexId(2),
            LinearPath::parse("//item/stock").unwrap(),
            DataType::Double,
        ),
    ];
    let cost_one = evaluate_indexes(&c, &model, &one, std::slice::from_ref(&q)).total();
    let cost_both = evaluate_indexes(&c, &model, &both, std::slice::from_ref(&q)).total();
    assert!(
        cost_both < cost_one,
        "covering both OR branches must beat covering one ({cost_both} vs {cost_one})"
    );
}

#[test]
fn advisor_recommends_indexes_for_both_or_branches() {
    let c = collection(500);
    let w = Workload::from_queries(&["//item[price = 3 or stock = 5]/name"], "shop").unwrap();
    let advisor = Advisor::default();
    let rec = advisor.recommend(&c, &w, 1 << 20, SearchStrategy::GreedyHeuristic);
    // Both OR branches must be covered — either by two specific indexes
    // or by one generalized index containing both (e.g. //item/*).
    let price = LinearPath::parse("//item/price").unwrap();
    let stock = LinearPath::parse("//item/stock").unwrap();
    let covers = |p: &LinearPath| {
        rec.indexes
            .iter()
            .any(|d| xia::index::contains(&d.pattern, p))
    };
    assert!(
        covers(&price) && covers(&stock),
        "both branches should be covered: {:?}",
        rec.indexes
            .iter()
            .map(|d| d.pattern.to_string())
            .collect::<Vec<_>>()
    );
    assert!(rec.benefit() > 0.0, "OR coverage must pay off");
}
