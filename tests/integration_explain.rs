//! Integration tests for the two new EXPLAIN modes, across all three
//! surface languages, against generated benchmark data.

use xia::prelude::*;

fn collection() -> Collection {
    let mut c = Collection::new("auctions");
    XMarkGen::new(XMarkConfig {
        docs: 120,
        ..Default::default()
    })
    .populate(&mut c);
    c
}

#[test]
fn enumerate_indexes_reports_indexable_patterns_only() {
    let q = compile(
        "/site/regions/africa/item[price > 100 and quantity = 2]/name",
        "auctions",
    )
    .unwrap();
    let cands = enumerate_indexes(&q);
    let patterns: Vec<String> = cands.iter().map(|c| c.pattern.to_string()).collect();
    assert!(patterns.contains(&"/site/regions/africa/item/price".to_string()));
    assert!(patterns.contains(&"/site/regions/africa/item/quantity".to_string()));
    assert!(patterns.contains(&"/site/regions/africa/item/name".to_string()));
    assert_eq!(patterns.len(), 3);
    // Types follow the predicates.
    let price = cands
        .iter()
        .find(|c| c.pattern.to_string().ends_with("price"))
        .unwrap();
    assert_eq!(price.data_type, DataType::Double);
    let name = cands
        .iter()
        .find(|c| c.pattern.to_string().ends_with("name"))
        .unwrap();
    assert_eq!(name.data_type, DataType::Varchar);
}

#[test]
fn all_languages_enumerate_equivalent_filter_patterns() {
    let xpath = compile("//open_auction[initial > 50]/current", "auctions").unwrap();
    let xquery = compile(
        r#"for $a in collection("auctions")//open_auction where $a/initial > 50 return $a/current"#,
        "auctions",
    )
    .unwrap();
    let px: Vec<String> = enumerate_indexes(&xpath)
        .iter()
        .map(|c| c.to_string())
        .collect();
    let pq: Vec<String> = enumerate_indexes(&xquery)
        .iter()
        .map(|c| c.to_string())
        .collect();
    assert_eq!(px, pq, "XPath and XQuery forms must enumerate identically");
}

#[test]
fn evaluate_indexes_monotone_in_configuration() {
    let c = collection();
    let model = CostModel::default();
    let queries: Vec<NormalizedQuery> = vec![
        compile("/site/regions/africa/item[price > 450]/name", "auctions").unwrap(),
        compile("//person[profile/age > 70]/name", "auctions").unwrap(),
    ];
    let exact: Vec<IndexDefinition> = vec![
        IndexDefinition::virtual_index(
            IndexId(1),
            LinearPath::parse("/site/regions/africa/item/price").unwrap(),
            DataType::Double,
        ),
        IndexDefinition::virtual_index(
            IndexId(2),
            LinearPath::parse("//person/profile/age").unwrap(),
            DataType::Double,
        ),
    ];
    let none = evaluate_indexes(&c, &model, &[], &queries);
    let one = evaluate_indexes(&c, &model, &exact[..1], &queries);
    let both = evaluate_indexes(&c, &model, &exact, &queries);
    assert!(one.total() < none.total(), "one index should help");
    assert!(both.total() < one.total(), "two indexes should help more");
    // The best plan under `both` uses both indexes (one per query).
    let used: std::collections::HashSet<_> = both
        .per_query
        .iter()
        .flat_map(|q| q.used_indexes.iter().copied())
        .collect();
    assert_eq!(used.len(), 2);
}

#[test]
fn evaluate_indexes_never_worse_than_no_index() {
    // Adding an index can never make a best plan worse: the optimizer can
    // always ignore it.
    let c = collection();
    let model = CostModel::default();
    let queries: Vec<NormalizedQuery> = xmark_queries()
        .iter()
        .map(|q| compile(q, "auctions").unwrap())
        .collect();
    let none = evaluate_indexes(&c, &model, &[], &queries);
    let silly = vec![IndexDefinition::virtual_index(
        IndexId(9),
        LinearPath::parse("//no/such/path").unwrap(),
        DataType::Varchar,
    )];
    let with = evaluate_indexes(&c, &model, &silly, &queries);
    for (a, b) in none.per_query.iter().zip(&with.per_query) {
        assert!(b.cost.total() <= a.cost.total() + 1e-9);
    }
}

#[test]
fn virtual_and_physical_costing_agree() {
    // The same configuration costed virtually (Evaluate Indexes) and
    // physically (real catalog) should produce the same plan shape,
    // because virtual index stats are estimated from the same dictionary.
    let mut c = collection();
    let pattern = LinearPath::parse("//closed_auction/price").unwrap();
    let q = compile("//closed_auction[price >= 700]/date", "auctions").unwrap();
    let model = CostModel::default();

    let virt = evaluate_indexes(
        &c,
        &model,
        &[IndexDefinition::virtual_index(
            IndexId(1),
            pattern.clone(),
            DataType::Double,
        )],
        std::slice::from_ref(&q),
    );
    c.create_index(IndexDefinition::new(IndexId(1), pattern, DataType::Double));
    let real = explain(&c, &model, &q);

    assert_eq!(virt.per_query[0].used_indexes, real.plan.used_indexes());
    let v = virt.per_query[0].cost.total();
    let r = real.plan.cost.total();
    assert!(
        (v - r).abs() / r.max(1.0) < 0.25,
        "virtual ({v:.1}) and physical ({r:.1}) costs should be close"
    );
}

#[test]
fn explain_text_describes_the_plan() {
    let mut c = collection();
    c.create_index(IndexDefinition::new(
        IndexId(3),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    let q = compile("//item[price > 490]/name", "auctions").unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    assert!(ex.text.contains("XISCAN idx3"), "{}", ex.text);
    assert!(ex.text.contains("//item/price"), "{}", ex.text);
    assert!(ex.text.contains("Estimated cost"), "{}", ex.text);
}
