//! Cross-crate engine integration: generated data flows through parsing,
//! storage, statistics, physical indexes, plan selection and execution,
//! and every indexed plan returns exactly what navigational evaluation
//! returns.

use xia::prelude::*;

fn xmark_collection(docs: usize) -> Collection {
    let mut c = Collection::new("auctions");
    XMarkGen::new(XMarkConfig {
        docs,
        ..Default::default()
    })
    .populate(&mut c);
    c
}

/// Evaluate a query navigationally over every document (ground truth).
fn ground_truth(c: &Collection, q: &NormalizedQuery) -> Vec<(DocId, u32)> {
    let mut out = Vec::new();
    for (id, doc) in c.documents() {
        for n in q.run_on_document(doc) {
            out.push((id, n.as_u32()));
        }
    }
    out
}

#[test]
fn indexed_plans_agree_with_ground_truth_on_xmark() {
    let mut c = xmark_collection(60);
    // A broad physical configuration: typed, attribute, general patterns.
    for (i, (pat, ty)) in [
        ("/site/regions/africa/item/price", DataType::Double),
        ("//item/price", DataType::Double),
        ("//item/quantity", DataType::Varchar),
        ("//person/profile/age", DataType::Double),
        ("//item/@id", DataType::Varchar),
        ("//*", DataType::Varchar),
        ("//closed_auction/price", DataType::Double),
    ]
    .iter()
    .enumerate()
    {
        c.create_index(IndexDefinition::new(
            IndexId(i as u32 + 1),
            LinearPath::parse(pat).unwrap(),
            *ty,
        ));
    }

    let queries = [
        "/site/regions/africa/item[price > 400]/name",
        "//item[price < 20]/quantity",
        r#"//item[quantity = "3"]/name"#,
        "//person[profile/age >= 70]/name",
        r#"//item[@id = "item3_africa_0"]"#,
        "//closed_auction[price >= 600]/date",
        "/site/regions/europe/item/price",
        "//person/emailaddress",
        r#"for $i in collection("auctions")//item where $i/price > 450 return $i/name"#,
        r#"SELECT XMLQUERY('$d//person/name') FROM auctions WHERE XMLEXISTS('$d//person[profile/age > 75]')"#,
    ];
    let model = CostModel::default();
    let mut indexed_plans = 0;
    for text in queries {
        let q = compile(text, "auctions").unwrap();
        let ex = explain(&c, &model, &q);
        let (got, _) = execute(&c, &q, &ex.plan).unwrap();
        let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
        let want = ground_truth(&c, &q);
        assert_eq!(
            got, want,
            "plan for {text} returned wrong results:\n{}",
            ex.text
        );
        if ex.plan.uses_indexes() {
            indexed_plans += 1;
        }
    }
    assert!(
        indexed_plans >= 6,
        "most of these selective queries should use indexes ({indexed_plans}/10)"
    );
}

#[test]
fn index_maintenance_keeps_plans_correct_under_churn() {
    let mut c = xmark_collection(30);
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/price").unwrap(),
        DataType::Double,
    ));
    let gen = XMarkGen::new(XMarkConfig {
        docs: 10,
        seed: 777,
        ..Default::default()
    });
    for d in gen.generate() {
        let (_, rep) = c.insert(d);
        assert!(rep.index_entries_touched > 0);
    }
    // Delete every other original document.
    for i in (0..30).step_by(2) {
        c.delete(DocId(i)).unwrap();
    }
    let q = compile("//item[price < 50]/name", "auctions").unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    let (got, _) = execute(&c, &q, &ex.plan).unwrap();
    let want = ground_truth(&c, &q);
    let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
    assert_eq!(got, want, "post-churn plan disagrees");
}

#[test]
fn statistics_survive_churn() {
    let mut c = xmark_collection(20);
    let pattern = LinearPath::parse("//item/price").unwrap();
    let before = c.stats().count_matching(&pattern);
    assert_eq!(before, 20 * 6 * 2); // 20 docs × 6 regions × 2 items

    for i in 0..10 {
        c.delete(DocId(i)).unwrap();
    }
    assert_eq!(c.stats().count_matching(&pattern), 10 * 6 * 2);
    assert_eq!(c.len(), 10);
}

#[test]
fn tpox_database_round_trips_queries() {
    let mut db = Database::new();
    TpoxGen::new(TpoxConfig {
        orders: 100,
        customers: 30,
        securities: 20,
        seed: 5,
    })
    .populate_all(&mut db);
    let model = CostModel::default();
    for (coll_name, text) in tpox_queries() {
        let c = db.collection(coll_name).unwrap();
        let q = compile(&text, coll_name).unwrap();
        let ex = explain(c, &model, &q);
        let (got, _) = execute(c, &q, &ex.plan).unwrap();
        let want = ground_truth(c, &q);
        let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
        assert_eq!(
            got, want,
            "TPoX query {text} wrong under plan:\n{}",
            ex.text
        );
    }
}

#[test]
fn virtual_size_estimates_track_actual_sizes() {
    let mut c = xmark_collection(50);
    for (i, (pat, ty)) in [
        ("//item/price", DataType::Double),
        ("//item/quantity", DataType::Varchar),
        ("/site/regions/*/item/*", DataType::Varchar),
        ("//person/name", DataType::Varchar),
    ]
    .iter()
    .enumerate()
    {
        let pattern = LinearPath::parse(pat).unwrap();
        let est_entries = c.stats().estimated_index_entries(&pattern, *ty);
        let est_bytes = c.stats().estimated_index_bytes(&pattern, *ty);
        c.create_index(IndexDefinition::new(
            IndexId(i as u32),
            pattern.clone(),
            *ty,
        ));
        let actual = c.index(IndexId(i as u32)).unwrap();
        assert_eq!(
            est_entries,
            actual.len() as u64,
            "entry estimate for {pat} must be exact (perfect statistics)"
        );
        let ratio = est_bytes as f64 / actual.byte_size().max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "byte estimate for {pat} off by {ratio:.2}x ({est_bytes} vs {})",
            actual.byte_size()
        );
    }
}

#[test]
fn serialization_round_trips_generated_documents() {
    for doc in XMarkGen::new(XMarkConfig {
        docs: 5,
        ..Default::default()
    })
    .generate()
    {
        let text = xia::xml::serialize(&doc);
        let re = Document::parse(&text).unwrap();
        assert_eq!(xia::xml::serialize(&re), text);
        assert_eq!(re.node_count(), doc.node_count());
    }
}
