//! End-to-end advisor integration on generated benchmark data: the full
//! enumerate → generalize → search → create → execute pipeline, plus the
//! cross-strategy and budget behaviours the paper demonstrates.

use xia::advisor::analysis::measure_execution;
use xia::prelude::*;

fn xmark(docs: usize) -> Collection {
    let mut c = Collection::new("auctions");
    XMarkGen::new(XMarkConfig {
        docs,
        ..Default::default()
    })
    .populate(&mut c);
    c
}

fn regional_workload() -> Workload {
    Workload::from_queries(
        &[
            "/site/regions/africa/item/quantity",
            "/site/regions/namerica/item/quantity",
            "/site/regions/samerica/item/price",
            "/site/regions/europe/item[price > 450]/name",
            "//closed_auction[price >= 700]/date",
        ],
        "auctions",
    )
    .unwrap()
}

#[test]
fn full_pipeline_on_xmark() {
    let mut c = xmark(150);
    let w = regional_workload();
    let advisor = Advisor::default();
    let rec = advisor.recommend(&c, &w, 1 << 20, SearchStrategy::GreedyHeuristic);

    assert!(!rec.indexes.is_empty());
    assert!(rec.outcome.size_bytes <= 1 << 20);
    assert!(rec.benefit() > 0.0);
    // The DAG contains the paper's generalization for the regional queries.
    let dag_patterns: Vec<String> = rec
        .dag
        .candidates()
        .map(|c| c.pattern.to_string())
        .collect();
    assert!(
        dag_patterns
            .iter()
            .any(|p| p == "/site/regions/*/item/quantity"),
        "expected regional generalization in {dag_patterns:?}"
    );

    // Create the indexes; estimated improvements must appear for real.
    let before = measure_execution(&c, &w);
    Advisor::create_indexes(&rec, &mut c);
    let after = measure_execution(&c, &w);
    assert_eq!(before.results, after.results);
    assert!(after.docs_evaluated < before.docs_evaluated);
}

#[test]
fn budget_sweep_is_monotone_and_respected() {
    let c = xmark(120);
    let w = regional_workload();
    let advisor = Advisor::default();
    let mut prev_benefit = -1.0;
    for budget in [8 << 10, 32 << 10, 128 << 10, 1 << 20, 8 << 20] {
        let rec = advisor.recommend(&c, &w, budget, SearchStrategy::GreedyHeuristic);
        assert!(
            rec.outcome.size_bytes <= budget,
            "budget {budget} violated: {}",
            rec.outcome.size_bytes
        );
        // Greedy benefit is not strictly monotone in theory, but must
        // never collapse as budget grows.
        assert!(
            rec.benefit() + 1e-6 >= prev_benefit * 0.8,
            "benefit collapsed at budget {budget}: {} after {prev_benefit}",
            rec.benefit()
        );
        prev_benefit = prev_benefit.max(rec.benefit());
    }
}

#[test]
fn strategies_tradeoff_generality_for_seen_benefit() {
    let c = xmark(150);
    // Train on two regions only.
    let w = Workload::from_queries(
        &[
            "/site/regions/africa/item/quantity",
            "/site/regions/asia/item/quantity",
        ],
        "auctions",
    )
    .unwrap();
    let advisor = Advisor::default();
    let greedy = advisor.recommend(&c, &w, 4 << 20, SearchStrategy::GreedyHeuristic);
    let topdown = advisor.recommend(&c, &w, 4 << 20, SearchStrategy::TopDown);

    // Both help the training workload.
    assert!(greedy.benefit() > 0.0);
    assert!(topdown.benefit() > 0.0);

    // Unseen query: a region the workload never mentioned.
    let unseen = vec![compile("/site/regions/europe/item/quantity", "auctions").unwrap()];
    let g_report = analyze(&advisor, &c, &w, &greedy, &unseen);
    let t_report = analyze(&advisor, &c, &w, &topdown, &unseen);
    let g_unseen = &g_report.unseen_rows[0];
    let t_unseen = &t_report.unseen_rows[0];
    assert!(
        t_unseen.recommended < t_unseen.no_index,
        "top-down's general indexes must help the unseen region"
    );
    assert!(
        t_unseen.recommended <= g_unseen.recommended + 1e-6,
        "top-down should serve the unseen region at least as well as greedy \
         (topdown {} vs greedy {})",
        t_unseen.recommended,
        g_unseen.recommended
    );
}

#[test]
fn analysis_costs_are_ordered() {
    let c = xmark(100);
    let w = regional_workload();
    let advisor = Advisor::default();
    let rec = advisor.recommend(&c, &w, 256 << 10, SearchStrategy::GreedyHeuristic);
    let report = analyze(&advisor, &c, &w, &rec, &[]);
    for row in &report.rows {
        assert!(row.recommended <= row.no_index + 1e-6, "{}", row.query);
        assert!(row.overtrained <= row.recommended + 1e-6, "{}", row.query);
    }
    assert!(report.recommended_size <= report.overtrained_size);
}

#[test]
fn update_cost_shrinks_configurations() {
    let c = xmark(120);
    let mut w = regional_workload();
    let advisor = Advisor::default();
    let ro = advisor.recommend(&c, &w, 1 << 20, SearchStrategy::GreedyHeuristic);

    let sample = c.get(DocId(0)).unwrap().clone();
    w.add_insert(sample, 1_000_000.0);
    let uh = advisor.recommend(&c, &w, 1 << 20, SearchStrategy::GreedyHeuristic);
    assert!(
        uh.indexes.len() < ro.indexes.len() || uh.outcome.size_bytes < ro.outcome.size_bytes,
        "extreme update rates must shrink the recommendation \
         ({} idx / {} B vs {} idx / {} B)",
        uh.indexes.len(),
        uh.outcome.size_bytes,
        ro.indexes.len(),
        ro.outcome.size_bytes
    );
}

#[test]
fn tpox_attribute_indexes_are_recommended() {
    let mut db = Database::new();
    TpoxGen::new(TpoxConfig {
        orders: 300,
        customers: 40,
        securities: 30,
        seed: 3,
    })
    .populate_all(&mut db);
    let order_queries: Vec<String> = tpox_queries()
        .into_iter()
        .filter(|(c, _)| *c == "order")
        .map(|(_, q)| q)
        .collect();
    let refs: Vec<&str> = order_queries.iter().map(String::as_str).collect();
    let w = Workload::from_queries(&refs, "order").unwrap();
    let advisor = Advisor::default();
    let rec = advisor.recommend(
        db.collection("order").unwrap(),
        &w,
        1 << 20,
        SearchStrategy::GreedyHeuristic,
    );
    assert!(
        rec.indexes.iter().any(|d| d.pattern.targets_attribute()),
        "FIXML workload should yield attribute-pattern indexes: {:?}",
        rec.indexes
            .iter()
            .map(|d| d.pattern.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn mixed_language_workload_is_advised_uniformly() {
    let c = xmark(120);
    let mut w = Workload::new();
    w.add_query("//open_auction[initial >= 90]/current", "auctions", 1.0)
        .unwrap();
    w.add_query(
        r#"for $a in collection("auctions")//open_auction where $a/initial >= 90 return $a/current"#,
        "auctions",
        1.0,
    )
    .unwrap();
    let advisor = Advisor::default();
    let rec = advisor.recommend(&c, &w, 1 << 20, SearchStrategy::GreedyHeuristic);
    // Both statements produce the same pattern, so one index serves both
    // and appears once.
    let initial_indexes: Vec<_> = rec
        .indexes
        .iter()
        .filter(|d| d.pattern.to_string() == "//open_auction/initial")
        .collect();
    assert_eq!(initial_indexes.len(), 1, "{:?}", rec.indexes);
    // And both queries' plans use it.
    for used in &rec.outcome.used_per_query {
        assert!(!used.is_empty(), "each query should use an index");
    }
}
