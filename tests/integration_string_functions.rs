//! The `contains()` / `starts-with()` string functions, across the whole
//! stack: parsing, navigational evaluation, index matching (prefix probes
//! are sargable, substring scans are not), plan execution agreement, and
//! advisor candidate enumeration.

use xia::index::{match_index, PathPredicate};
use xia::prelude::*;
use xia::xpath::{CmpOp, Literal};

fn collection() -> Collection {
    let mut c = Collection::new("auctions");
    XMarkGen::new(XMarkConfig {
        docs: 120,
        ..Default::default()
    })
    .populate(&mut c);
    c
}

fn ground_truth(c: &Collection, q: &NormalizedQuery) -> Vec<(DocId, u32)> {
    let mut out = Vec::new();
    for (id, doc) in c.documents() {
        for n in q.run_on_document(doc) {
            out.push((id, n.as_u32()));
        }
    }
    out
}

#[test]
fn parse_and_display_round_trip() {
    for q in [
        r#"//item[starts-with(name, "vintage")]/price"#,
        r#"//item[contains(name, "coins")]"#,
        r#"//person[starts-with(emailaddress, "person3_")]"#,
        r#"//name[contains(., "drum")]"#,
    ] {
        let parsed = xia::xpath::parse(q).unwrap();
        let again = xia::xpath::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, again, "round trip failed for {q}");
    }
}

#[test]
fn navigational_semantics() {
    let d = Document::parse(
        r#"<r><x><n>vintage coins</n></x><x><n>rare coins</n></x><x><n>vintage art</n></x></r>"#,
    )
    .unwrap();
    let count = |q: &str| xia::xpath::evaluate(&d, &xia::xpath::parse(q).unwrap()).len();
    assert_eq!(count(r#"//x[starts-with(n, "vintage")]"#), 2);
    assert_eq!(count(r#"//x[contains(n, "coins")]"#), 2);
    assert_eq!(count(r#"//x[starts-with(n, "coins")]"#), 0);
    assert_eq!(count(r#"//x[contains(n, "v")]"#), 2);
    assert_eq!(count(r#"//n[starts-with(., "rare")]"#), 1);
}

#[test]
fn starts_with_is_sargable_contains_is_not() {
    let def = IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/name").unwrap(),
        DataType::Varchar,
    );
    let sw = PathPredicate::with_value(
        LinearPath::parse("//item/name").unwrap(),
        CmpOp::StartsWith,
        Literal::Str("vintage".into()),
    );
    let ct = PathPredicate::with_value(
        LinearPath::parse("//item/name").unwrap(),
        CmpOp::Contains,
        Literal::Str("coins".into()),
    );
    assert!(
        !match_index(&def, &sw).unwrap().structural_only,
        "prefix probe is sargable"
    );
    assert!(
        match_index(&def, &ct).unwrap().structural_only,
        "substring scan is residual"
    );
}

#[test]
fn plans_agree_with_ground_truth() {
    let mut c = collection();
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//item/name").unwrap(),
        DataType::Varchar,
    ));
    let model = CostModel::default();
    for text in [
        r#"//item[starts-with(name, "vintage")]/price"#,
        r#"//item[contains(name, "coins")]/price"#,
        r#"//item[starts-with(name, "zzz-nothing")]"#,
    ] {
        let q = compile(text, "auctions").unwrap();
        let ex = explain(&c, &model, &q);
        let (got, _) = execute(&c, &q, &ex.plan).unwrap();
        let got: Vec<(DocId, u32)> = got.into_iter().map(|(d, n)| (d, n.as_u32())).collect();
        assert_eq!(
            got,
            ground_truth(&c, &q),
            "plan disagreement for {text}:\n{}",
            ex.text
        );
    }
}

#[test]
fn selective_prefix_uses_index_probe() {
    let mut c = collection();
    c.create_index(IndexDefinition::new(
        IndexId(1),
        LinearPath::parse("//person/emailaddress").unwrap(),
        DataType::Varchar,
    ));
    let q = compile(
        r#"//person[starts-with(emailaddress, "person3_")]/name"#,
        "auctions",
    )
    .unwrap();
    let ex = explain(&c, &CostModel::default(), &q);
    assert!(
        ex.plan.uses_indexes(),
        "prefix predicate should use the index:\n{}",
        ex.text
    );
    let (rows, stats) = execute(&c, &q, &ex.plan).unwrap();
    assert!(!rows.is_empty());
    assert!(
        stats.docs_evaluated < 20,
        "prefix probe should narrow candidates hard, got {}",
        stats.docs_evaluated
    );
}

#[test]
fn advisor_enumerates_varchar_candidates_for_string_functions() {
    let q = compile(r#"//item[starts-with(name, "vintage")]"#, "auctions").unwrap();
    let cands = enumerate_indexes(&q);
    let name_cand = cands
        .iter()
        .find(|c| c.pattern.to_string() == "//item/name")
        .expect("name pattern enumerated");
    assert_eq!(name_cand.data_type, DataType::Varchar);
}

#[test]
fn advisor_recommends_index_for_prefix_workload() {
    let c = collection();
    let w = Workload::from_queries(
        &[r#"//person[starts-with(emailaddress, "person3_")]/name"#],
        "auctions",
    )
    .unwrap();
    let advisor = Advisor::default();
    let rec = advisor.recommend(&c, &w, 1 << 20, SearchStrategy::GreedyHeuristic);
    // The recommendation may be the exact pattern or a generalization that
    // covers it (e.g. //person/* also serves the name extraction).
    let email = LinearPath::parse("//person/emailaddress").unwrap();
    assert!(
        rec.indexes
            .iter()
            .any(|d| xia::index::contains(&d.pattern, &email)),
        "expected an index covering //person/emailaddress in {:?}",
        rec.indexes
            .iter()
            .map(|d| d.pattern.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn prefix_selectivity_tracks_reality() {
    let c = collection();
    let pattern = LinearPath::parse("//item/name").unwrap();
    // Generated names start with one of 12 adjectives.
    let sel = c
        .stats()
        .selectivity(&pattern, CmpOp::StartsWith, &Literal::Str("vintage".into()));
    assert!(sel > 0.01 && sel < 0.25, "starts-with selectivity {sel}");
    let none = c
        .stats()
        .selectivity(&pattern, CmpOp::StartsWith, &Literal::Str("zzz".into()));
    assert_eq!(none, 0.0);
    let contains = c
        .stats()
        .selectivity(&pattern, CmpOp::Contains, &Literal::Str("coins".into()));
    assert!(
        contains > 0.01 && contains < 0.5,
        "contains selectivity {contains}"
    );
}
